#ifndef KDSEL_TSAD_DETECTOR_H_
#define KDSEL_TSAD_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace kdsel::tsad {

/// Interface for all TSAD models (the candidate set M of the paper).
///
/// A detector assigns every point of a series an anomaly score (higher =
/// more anomalous). Detectors are unsupervised or self-supervised: they
/// never see labels, mirroring the TSB-UAD protocol where performance is
/// computed afterwards from scores + ground truth.
class Detector {
 public:
  virtual ~Detector() = default;

  Detector() = default;
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Canonical model name ("IForest", "LOF", ...).
  virtual std::string name() const = 0;

  /// Per-point anomaly scores; result length == series length.
  /// Fails on series shorter than the detector's minimum context.
  virtual StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const = 0;
};

/// The canonical 12 TSAD model names in the paper's order.
const std::vector<std::string>& CanonicalModelNames();

/// Builds the full 12-model candidate set with default settings.
/// `seed` drives the stochastic detectors (IForest, AE, ...).
std::vector<std::unique_ptr<Detector>> BuildDefaultModelSet(uint64_t seed);

/// Builds one detector by canonical name.
StatusOr<std::unique_ptr<Detector>> BuildDetector(const std::string& name,
                                                  uint64_t seed);

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_DETECTOR_H_
