#include "tsad/nn_detectors.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tsad/util.h"

namespace kdsel::tsad {

namespace {

/// Packs selected rows into a [batch, dim] tensor.
nn::Tensor PackRows(const std::vector<std::vector<float>>& rows,
                    const std::vector<size_t>& idx) {
  KDSEL_CHECK(!idx.empty());
  const size_t dim = rows[idx[0]].size();
  nn::Tensor out({idx.size(), dim});
  for (size_t i = 0; i < idx.size(); ++i) {
    std::copy(rows[idx[i]].begin(), rows[idx[i]].end(), out.raw() + i * dim);
  }
  return out;
}

/// MSE loss between prediction and target; returns mean loss and writes
/// the gradient (2/B * (pred - target)) into `grad`.
double MseLossAndGrad(const nn::Tensor& pred, const nn::Tensor& target,
                      nn::Tensor& grad) {
  KDSEL_CHECK(nn::SameShape(pred, target));
  grad = nn::Tensor(pred.shape());
  const size_t n = pred.size();
  const size_t batch = pred.dim(0);
  double total = 0.0;
  const float scale = 2.0f / static_cast<float>(batch);
  for (size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    total += static_cast<double>(d) * d;
    grad.raw()[i] = scale * d;
  }
  return total / static_cast<double>(batch);
}

}  // namespace

StatusOr<std::vector<float>> AutoencoderDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  if (series.length() < 2 * w) {
    return Status::InvalidArgument("series too short for AE");
  }
  auto rows = EmbedWindows(series, w, /*z_normalize=*/true);
  Rng rng(options_.seed);

  nn::Sequential net;
  net.Add(std::make_unique<nn::Linear>(w, options_.hidden, rng));
  net.Add(std::make_unique<nn::ReLU>());
  net.Add(std::make_unique<nn::Linear>(options_.hidden, options_.latent, rng));
  net.Add(std::make_unique<nn::ReLU>());
  net.Add(std::make_unique<nn::Linear>(options_.latent, options_.hidden, rng));
  net.Add(std::make_unique<nn::ReLU>());
  net.Add(std::make_unique<nn::Linear>(options_.hidden, w, rng));

  nn::Adam opt(net.Parameters(), options_.learning_rate);

  // Train on a subsample of the windows (the vast majority are normal,
  // so the AE learns the normal manifold).
  const size_t n_train = std::min(options_.max_train_windows, rows.size());
  auto train_idx = rng.Sample(rows.size(), n_train);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(train_idx);
    for (size_t off = 0; off < train_idx.size(); off += options_.batch_size) {
      const size_t end = std::min(train_idx.size(), off + options_.batch_size);
      std::vector<size_t> batch(train_idx.begin() + static_cast<ptrdiff_t>(off),
                                train_idx.begin() + static_cast<ptrdiff_t>(end));
      nn::Tensor x = PackRows(rows, batch);
      nn::Tensor pred = net.Forward(x, /*training=*/true);
      nn::Tensor grad;
      MseLossAndGrad(pred, x, grad);
      net.Backward(grad);
      nn::ClipGradNorm(opt.params(), 5.0);
      opt.Step();
      opt.ZeroGrad();
    }
  }

  // Score all windows by reconstruction error.
  std::vector<float> window_scores(rows.size());
  const size_t kEvalBatch = 256;
  for (size_t off = 0; off < rows.size(); off += kEvalBatch) {
    const size_t end = std::min(rows.size(), off + kEvalBatch);
    std::vector<size_t> batch;
    for (size_t i = off; i < end; ++i) batch.push_back(i);
    nn::Tensor x = PackRows(rows, batch);
    nn::Tensor pred = net.Forward(x, /*training=*/false);
    for (size_t i = 0; i < batch.size(); ++i) {
      double err = 0.0;
      for (size_t j = 0; j < w; ++j) {
        double d = pred.At(i, j) - x.At(i, j);
        err += d * d;
      }
      window_scores[off + i] = static_cast<float>(std::sqrt(err / double(w)));
    }
  }
  auto scores = WindowToPointScores(window_scores, w, series.length());
  MinMaxNormalize(scores);
  return scores;
}

StatusOr<std::vector<float>> CnnDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  const size_t n = series.length();
  if (n < 2 * w + 1) {
    return Status::InvalidArgument("series too short for CNN");
  }
  const auto& v = series.values();
  // Build (window, next value) forecasting pairs on the z-normalized
  // series so the predictor is scale-free.
  std::vector<float> z(v.begin(), v.end());
  ts::ZNormalize(z);
  const size_t n_pairs = n - w;
  std::vector<std::vector<float>> inputs(n_pairs);
  std::vector<float> targets(n_pairs);
  for (size_t i = 0; i < n_pairs; ++i) {
    inputs[i].assign(z.begin() + static_cast<ptrdiff_t>(i),
                     z.begin() + static_cast<ptrdiff_t>(i + w));
    targets[i] = z[i + w];
  }

  Rng rng(options_.seed);
  nn::Sequential encoder;
  encoder.Add(std::make_unique<nn::Conv1d>(1, options_.channels,
                                           options_.kernel, rng));
  encoder.Add(std::make_unique<nn::ReLU>());
  encoder.Add(std::make_unique<nn::Conv1d>(options_.channels,
                                           options_.channels, options_.kernel,
                                           rng));
  encoder.Add(std::make_unique<nn::ReLU>());
  encoder.Add(std::make_unique<nn::GlobalAvgPool1d>());
  nn::Linear head(options_.channels, 1, rng);

  std::vector<nn::Parameter*> params = encoder.Parameters();
  for (nn::Parameter* p : head.Parameters()) params.push_back(p);
  nn::Adam opt(params, options_.learning_rate);

  const size_t n_train = std::min(options_.max_train_windows, n_pairs);
  auto train_idx = rng.Sample(n_pairs, n_train);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(train_idx);
    for (size_t off = 0; off < train_idx.size(); off += options_.batch_size) {
      const size_t end = std::min(train_idx.size(), off + options_.batch_size);
      std::vector<size_t> batch(train_idx.begin() + static_cast<ptrdiff_t>(off),
                                train_idx.begin() + static_cast<ptrdiff_t>(end));
      nn::Tensor x =
          PackRows(inputs, batch).Reshaped({batch.size(), 1, w});
      nn::Tensor target({batch.size(), 1});
      for (size_t i = 0; i < batch.size(); ++i) target[i] = targets[batch[i]];
      nn::Tensor features = encoder.Forward(x, true);
      nn::Tensor pred = head.Forward(features, true);
      nn::Tensor grad;
      MseLossAndGrad(pred, target, grad);
      encoder.Backward(head.Backward(grad));
      nn::ClipGradNorm(params, 5.0);
      opt.Step();
      opt.ZeroGrad();
    }
  }

  // Score: |prediction error| at each forecastable point; the first w
  // points inherit the first computed score.
  std::vector<float> scores(n, 0.0f);
  const size_t kEvalBatch = 256;
  for (size_t off = 0; off < n_pairs; off += kEvalBatch) {
    const size_t end = std::min(n_pairs, off + kEvalBatch);
    std::vector<size_t> batch;
    for (size_t i = off; i < end; ++i) batch.push_back(i);
    nn::Tensor x = PackRows(inputs, batch).Reshaped({batch.size(), 1, w});
    nn::Tensor pred = head.Forward(encoder.Forward(x, false), false);
    for (size_t i = 0; i < batch.size(); ++i) {
      scores[off + i + w] = std::abs(pred[i] - targets[off + i]);
    }
  }
  for (size_t i = 0; i < w; ++i) scores[i] = scores[w];
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
