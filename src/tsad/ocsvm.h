#ifndef KDSEL_TSAD_OCSVM_H_
#define KDSEL_TSAD_OCSVM_H_

#include "tsad/detector.h"

namespace kdsel::tsad {

/// One-class SVM detector over window embeddings.
///
/// The RBF kernel is approximated with random Fourier features (Rahimi &
/// Recht 2007); the linear one-class SVM objective
///   min_w,rho  1/2 ||w||^2 - rho + 1/(nu*n) sum_i max(0, rho - <w, phi_i>)
/// is then optimized with SGD. Score = rho - <w, phi(x)> (signed margin
/// violation, larger = more anomalous).
class OcsvmDetector : public Detector {
 public:
  struct Options {
    size_t window = 24;
    size_t num_features = 64;  ///< Random Fourier feature dimension.
    double nu = 0.1;
    double gamma = 0.0;        ///< RBF width; 0 => 1/window.
    size_t epochs = 30;
    double learning_rate = 0.05;
    uint64_t seed = 29;
  };

  explicit OcsvmDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "OCSVM"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_OCSVM_H_
