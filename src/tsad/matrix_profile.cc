#include "tsad/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tsad/util.h"

namespace kdsel::tsad {

StatusOr<std::vector<float>> MatrixProfileDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  const size_t n = series.length();
  if (n < 2 * w) {
    return Status::InvalidArgument("series too short for MatrixProfile");
  }
  const auto& x = series.values();
  const size_t m = n - w + 1;  // number of subsequences

  // Rolling means and stds via cumulative sums.
  std::vector<double> mean(m), inv_std(m);
  {
    double sum = 0.0, sq = 0.0;
    for (size_t i = 0; i < w; ++i) {
      sum += x[i];
      sq += static_cast<double>(x[i]) * x[i];
    }
    for (size_t i = 0;; ++i) {
      mean[i] = sum / static_cast<double>(w);
      double var = sq / static_cast<double>(w) - mean[i] * mean[i];
      inv_std[i] = 1.0 / std::sqrt(std::max(var, 1e-12));
      if (i + 1 >= m) break;
      sum += x[i + w] - x[i];
      sq += static_cast<double>(x[i + w]) * x[i + w] -
            static_cast<double>(x[i]) * x[i];
    }
  }

  std::vector<double> profile(m, std::numeric_limits<double>::max());
  const size_t excl = std::max<size_t>(
      1, static_cast<size_t>(options_.exclusion_fraction * double(w)));

  // Diagonal traversal: for each offset d >= excl, slide the dot product
  // QT(i, i+d) down the diagonal with O(1) updates.
  for (size_t d = excl; d < m; ++d) {
    double qt = 0.0;
    for (size_t t = 0; t < w; ++t) {
      qt += static_cast<double>(x[t]) * x[t + d];
    }
    for (size_t i = 0;; ++i) {
      const size_t j = i + d;
      // z-normalized distance^2 = 2w(1 - corr).
      double corr = (qt - double(w) * mean[i] * mean[j]) *
                    (inv_std[i] * inv_std[j]) / static_cast<double>(w);
      corr = std::clamp(corr, -1.0, 1.0);
      double dist2 = 2.0 * static_cast<double>(w) * (1.0 - corr);
      profile[i] = std::min(profile[i], dist2);
      profile[j] = std::min(profile[j], dist2);
      if (j + 1 >= m) break;
      qt += static_cast<double>(x[i + w]) * x[j + w] -
            static_cast<double>(x[i]) * x[j];
    }
  }

  std::vector<float> window_scores(m);
  for (size_t i = 0; i < m; ++i) {
    window_scores[i] = static_cast<float>(std::sqrt(std::max(profile[i], 0.0)));
  }
  auto scores = WindowToPointScores(window_scores, w, n);
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
