#ifndef KDSEL_TSAD_IFOREST_H_
#define KDSEL_TSAD_IFOREST_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tsad/detector.h"

namespace kdsel::tsad {

/// Isolation Forest (Liu et al. 2008) over sliding-window embeddings.
///
/// Subsequences that need fewer random axis-aligned splits to isolate
/// are more anomalous. `IForest` embeds windows of `window` points;
/// `IForest1` (the paper's point-wise variant) sets window = 1 so each
/// data point is scored individually.
class IForestDetector : public Detector {
 public:
  struct Options {
    size_t window = 32;        ///< 1 => IForest1.
    size_t num_trees = 64;
    size_t subsample = 256;
    uint64_t seed = 7;
  };

  explicit IForestDetector(const Options& options);

  std::string name() const override {
    return options_.window == 1 ? "IForest1" : "IForest";
  }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_IFOREST_H_
