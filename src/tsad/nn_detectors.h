#ifndef KDSEL_TSAD_NN_DETECTORS_H_
#define KDSEL_TSAD_NN_DETECTORS_H_

#include "tsad/detector.h"

namespace kdsel::tsad {

/// Autoencoder detector: an MLP (window -> latent -> window) is trained
/// on the series' own subsequences with MSE; anomalous subsequences
/// reconstruct poorly. Self-supervised per series, as in TSB-UAD.
class AutoencoderDetector : public Detector {
 public:
  struct Options {
    size_t window = 32;
    size_t latent = 8;
    size_t hidden = 32;
    size_t epochs = 30;
    size_t batch_size = 64;
    size_t max_train_windows = 512;
    double learning_rate = 1e-2;
    uint64_t seed = 17;
  };

  explicit AutoencoderDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "AE"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

/// CNN forecasting detector: a small 1-D CNN predicts each value from
/// the preceding window; prediction error is the anomaly score.
class CnnDetector : public Detector {
 public:
  struct Options {
    size_t window = 32;
    size_t channels = 8;
    size_t kernel = 5;
    size_t epochs = 20;
    size_t batch_size = 64;
    size_t max_train_windows = 512;
    double learning_rate = 1e-2;
    uint64_t seed = 19;
  };

  explicit CnnDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "CNN"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_NN_DETECTORS_H_
