#include "tsad/pca.h"

#include <cmath>

#include "common/rng.h"
#include "tsad/util.h"

namespace kdsel::tsad {

StatusOr<std::vector<float>> PcaDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  if (series.length() < 2 * w) {
    return Status::InvalidArgument("series too short for PCA");
  }
  auto rows = EmbedWindows(series, w, /*z_normalize=*/false);
  const size_t n = rows.size();
  const size_t k = std::min(options_.num_components, w);

  // Center columns.
  std::vector<double> col_mean(w, 0.0);
  for (const auto& r : rows) {
    for (size_t j = 0; j < w; ++j) col_mean[j] += r[j];
  }
  for (double& m : col_mean) m /= static_cast<double>(n);
  std::vector<std::vector<float>> centered = rows;
  for (auto& r : centered) {
    for (size_t j = 0; j < w; ++j) {
      r[j] = static_cast<float>(r[j] - col_mean[j]);
    }
  }

  // Covariance matrix (w x w).
  std::vector<double> cov(w * w, 0.0);
  for (const auto& r : centered) {
    for (size_t a = 0; a < w; ++a) {
      const double ra = r[a];
      for (size_t b = a; b < w; ++b) {
        cov[a * w + b] += ra * r[b];
      }
    }
  }
  for (size_t a = 0; a < w; ++a) {
    for (size_t b = a; b < w; ++b) {
      cov[a * w + b] /= static_cast<double>(n);
      cov[b * w + a] = cov[a * w + b];
    }
  }

  // Top-k eigenvectors via power iteration with Gram-Schmidt deflation.
  Rng rng(options_.seed);
  std::vector<std::vector<double>> components;
  for (size_t c = 0; c < k; ++c) {
    std::vector<double> v(w);
    for (double& x : v) x = rng.Normal();
    for (size_t iter = 0; iter < options_.power_iters; ++iter) {
      // Orthogonalize against found components.
      for (const auto& u : components) {
        double dot = 0.0;
        for (size_t j = 0; j < w; ++j) dot += v[j] * u[j];
        for (size_t j = 0; j < w; ++j) v[j] -= dot * u[j];
      }
      // v <- cov * v, normalized.
      std::vector<double> nv(w, 0.0);
      for (size_t a = 0; a < w; ++a) {
        double acc = 0.0;
        const double* row = cov.data() + a * w;
        for (size_t b = 0; b < w; ++b) acc += row[b] * v[b];
        nv[a] = acc;
      }
      double norm = 0.0;
      for (double x : nv) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (size_t j = 0; j < w; ++j) v[j] = nv[j] / norm;
    }
    components.push_back(std::move(v));
  }

  // Reconstruction error per window.
  std::vector<float> window_scores(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& r = centered[i];
    double energy = 0.0;
    for (size_t j = 0; j < w; ++j) energy += static_cast<double>(r[j]) * r[j];
    double captured = 0.0;
    for (const auto& u : components) {
      double proj = 0.0;
      for (size_t j = 0; j < w; ++j) proj += r[j] * u[j];
      captured += proj * proj;
    }
    window_scores[i] =
        static_cast<float>(std::sqrt(std::max(0.0, energy - captured)));
  }
  auto scores = WindowToPointScores(window_scores, w, series.length());
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
