#ifndef KDSEL_TSAD_ENSEMBLE_H_
#define KDSEL_TSAD_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "tsad/detector.h"

namespace kdsel::tsad {

/// The ensembling baseline from the paper's introduction: run every
/// candidate model and combine their (min-max normalized) scores.
/// Accurate but requires |M| detector runs per series — the cost that
/// motivates model selection.
class EnsembleDetector : public Detector {
 public:
  enum class Combine {
    kMean,    ///< Average of normalized scores.
    kMax,     ///< Pointwise maximum of normalized scores.
    kMedian,  ///< Pointwise median of normalized scores.
  };

  /// Takes ownership of `members`. At least one member required.
  EnsembleDetector(std::vector<std::unique_ptr<Detector>> members,
                   Combine combine);

  std::string name() const override;
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

  size_t size() const { return members_.size(); }

 private:
  std::vector<std::unique_ptr<Detector>> members_;
  Combine combine_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_ENSEMBLE_H_
