#ifndef KDSEL_TSAD_UTIL_H_
#define KDSEL_TSAD_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ts/time_series.h"

namespace kdsel::tsad {

/// Embeds a series into overlapping subsequences of length `w`, stride 1:
/// row i = values[i .. i+w). Optionally z-normalizes each row.
/// Returns an empty vector when the series is shorter than w.
std::vector<std::vector<float>> EmbedWindows(const ts::TimeSeries& series,
                                             size_t w, bool z_normalize);

/// Maps per-window scores (window i covers [i, i+w)) back to per-point
/// scores by averaging the scores of all windows covering each point.
std::vector<float> WindowToPointScores(const std::vector<float>& window_scores,
                                       size_t w, size_t series_length);

/// Min-max normalizes scores to [0, 1] in place (no-op when constant).
void MinMaxNormalize(std::vector<float>& scores);

/// Lloyd's k-means with k-means++ seeding on dense rows.
struct KMeansResult {
  std::vector<std::vector<float>> centroids;
  std::vector<int> assignment;       ///< Cluster id per row.
  std::vector<size_t> cluster_size;  ///< Rows per cluster.
};
StatusOr<KMeansResult> KMeans(const std::vector<std::vector<float>>& rows,
                              size_t k, size_t max_iters, Rng& rng);

/// Squared Euclidean distance between equal-length vectors.
double SquaredDistance(const std::vector<float>& a,
                       const std::vector<float>& b);

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_UTIL_H_
