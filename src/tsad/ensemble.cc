#include "tsad/ensemble.h"

#include <algorithm>

#include "tsad/util.h"

namespace kdsel::tsad {

EnsembleDetector::EnsembleDetector(
    std::vector<std::unique_ptr<Detector>> members, Combine combine)
    : members_(std::move(members)), combine_(combine) {
  KDSEL_CHECK(!members_.empty());
}

std::string EnsembleDetector::name() const {
  switch (combine_) {
    case Combine::kMean:
      return "Ensemble-mean";
    case Combine::kMax:
      return "Ensemble-max";
    case Combine::kMedian:
      return "Ensemble-median";
  }
  return "Ensemble";
}

StatusOr<std::vector<float>> EnsembleDetector::Score(
    const ts::TimeSeries& series) const {
  std::vector<std::vector<float>> member_scores;
  member_scores.reserve(members_.size());
  for (const auto& member : members_) {
    auto scores = member->Score(series);
    if (!scores.ok()) continue;  // Skip members that cannot handle it.
    MinMaxNormalize(*scores);
    member_scores.push_back(std::move(scores).value());
  }
  if (member_scores.empty()) {
    return Status::FailedPrecondition(
        "no ensemble member could score the series");
  }
  const size_t n = series.length();
  std::vector<float> combined(n, 0.0f);
  switch (combine_) {
    case Combine::kMean: {
      for (const auto& s : member_scores) {
        for (size_t i = 0; i < n; ++i) combined[i] += s[i];
      }
      const float inv = 1.0f / static_cast<float>(member_scores.size());
      for (float& v : combined) v *= inv;
      break;
    }
    case Combine::kMax: {
      for (const auto& s : member_scores) {
        for (size_t i = 0; i < n; ++i) combined[i] = std::max(combined[i], s[i]);
      }
      break;
    }
    case Combine::kMedian: {
      std::vector<float> column(member_scores.size());
      for (size_t i = 0; i < n; ++i) {
        for (size_t m = 0; m < member_scores.size(); ++m) {
          column[m] = member_scores[m][i];
        }
        auto mid = column.begin() + static_cast<ptrdiff_t>(column.size() / 2);
        std::nth_element(column.begin(), mid, column.end());
        combined[i] = *mid;
      }
      break;
    }
  }
  return combined;
}

}  // namespace kdsel::tsad
