#ifndef KDSEL_TSAD_MATRIX_PROFILE_H_
#define KDSEL_TSAD_MATRIX_PROFILE_H_

#include "tsad/detector.h"

namespace kdsel::tsad {

/// Matrix Profile discord detector (MP in the paper's model set).
///
/// For each subsequence, computes the z-normalized Euclidean distance to
/// its nearest non-trivial match; subsequences with large 1-NN distance
/// (discords) are anomalous. Uses the diagonal-traversal exact algorithm
/// (O(n^2) with O(1) work per cell, STOMP-style running dot products).
class MatrixProfileDetector : public Detector {
 public:
  struct Options {
    size_t window = 48;
    /// Trivial-match exclusion zone around each index, as a fraction of
    /// the window (standard is 1/2).
    double exclusion_fraction = 0.5;
  };

  explicit MatrixProfileDetector(const Options& options)
      : options_(options) {}

  std::string name() const override { return "MP"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_MATRIX_PROFILE_H_
