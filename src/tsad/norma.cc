#include "tsad/norma.h"

#include <cmath>
#include <limits>

#include "tsad/util.h"

namespace kdsel::tsad {

StatusOr<std::vector<float>> NormaDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  if (series.length() < w * 2) {
    return Status::InvalidArgument("series too short for NORMA");
  }
  auto rows = EmbedWindows(series, w, /*z_normalize=*/true);
  Rng rng(options_.seed);
  KDSEL_ASSIGN_OR_RETURN(
      auto km, KMeans(rows, options_.num_clusters, options_.kmeans_iters, rng));

  // The normal model: centroids weighted by their cluster share. A
  // subsequence's score is its frequency-weighted average distance to
  // the normal patterns, so distance to the dominant (most normal)
  // behaviour dominates the score.
  const size_t k = km.centroids.size();
  std::vector<double> weight(k);
  for (size_t c = 0; c < k; ++c) {
    weight[c] =
        static_cast<double>(km.cluster_size[c]) / double(rows.size());
  }
  std::vector<float> window_scores(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    double acc = 0.0;
    for (size_t c = 0; c < k; ++c) {
      acc += weight[c] * std::sqrt(SquaredDistance(rows[i], km.centroids[c]));
    }
    window_scores[i] = static_cast<float>(acc);
  }
  auto scores = WindowToPointScores(window_scores, w, series.length());
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
