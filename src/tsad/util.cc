#include "tsad/util.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kdsel::tsad {

std::vector<std::vector<float>> EmbedWindows(const ts::TimeSeries& series,
                                             size_t w, bool z_normalize) {
  std::vector<std::vector<float>> rows;
  const auto& v = series.values();
  if (v.size() < w || w == 0) return rows;
  rows.reserve(v.size() - w + 1);
  for (size_t i = 0; i + w <= v.size(); ++i) {
    std::vector<float> row(v.begin() + static_cast<ptrdiff_t>(i),
                           v.begin() + static_cast<ptrdiff_t>(i + w));
    if (z_normalize) ts::ZNormalize(row);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<float> WindowToPointScores(const std::vector<float>& window_scores,
                                       size_t w, size_t series_length) {
  std::vector<float> point(series_length, 0.0f);
  std::vector<float> count(series_length, 0.0f);
  for (size_t i = 0; i < window_scores.size(); ++i) {
    for (size_t j = i; j < std::min(series_length, i + w); ++j) {
      point[j] += window_scores[i];
      count[j] += 1.0f;
    }
  }
  for (size_t j = 0; j < series_length; ++j) {
    if (count[j] > 0) point[j] /= count[j];
  }
  return point;
}

void MinMaxNormalize(std::vector<float>& scores) {
  if (scores.empty()) return;
  auto [lo_it, hi_it] = std::minmax_element(scores.begin(), scores.end());
  const float lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-12f) {
    std::fill(scores.begin(), scores.end(), 0.0f);
    return;
  }
  const float inv = 1.0f / (hi - lo);
  for (float& s : scores) s = (s - lo) * inv;
}

double SquaredDistance(const std::vector<float>& a,
                       const std::vector<float>& b) {
  KDSEL_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

StatusOr<KMeansResult> KMeans(const std::vector<std::vector<float>>& rows,
                              size_t k, size_t max_iters, Rng& rng) {
  if (rows.empty()) return Status::InvalidArgument("kmeans: no rows");
  if (k == 0) return Status::InvalidArgument("kmeans: k must be positive");
  k = std::min(k, rows.size());
  const size_t dim = rows[0].size();

  KMeansResult result;
  // k-means++ seeding.
  result.centroids.push_back(rows[rng.Index(rows.size())]);
  std::vector<double> dist2(rows.size(), std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
      dist2[i] = std::min(dist2[i],
                          SquaredDistance(rows[i], result.centroids.back()));
      total += dist2[i];
    }
    if (total <= 0) break;  // All points identical to a centroid.
    double target = rng.Uniform() * total;
    size_t chosen = rows.size() - 1;
    double acc = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
      acc += dist2[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(rows[chosen]);
  }
  k = result.centroids.size();

  result.assignment.assign(rows.size(), 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      int best = 0;
      double best_d = SquaredDistance(rows[i], result.centroids[0]);
      for (size_t c = 1; c < k; ++c) {
        double d = SquaredDistance(rows[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      auto& s = sums[static_cast<size_t>(result.assignment[i])];
      for (size_t j = 0; j < dim; ++j) s[j] += rows[i][j];
      ++counts[static_cast<size_t>(result.assignment[i])];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Keep the old centroid.
      for (size_t j = 0; j < dim; ++j) {
        result.centroids[c][j] =
            static_cast<float>(sums[c][j] / static_cast<double>(counts[c]));
      }
    }
    if (!changed) break;
  }
  result.cluster_size.assign(k, 0);
  for (int a : result.assignment) {
    ++result.cluster_size[static_cast<size_t>(a)];
  }
  return result;
}

}  // namespace kdsel::tsad
