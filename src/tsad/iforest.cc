#include "tsad/iforest.h"

#include <algorithm>
#include <cmath>

#include "tsad/util.h"

namespace kdsel::tsad {

namespace {

/// A node of an isolation tree, stored in a flat vector.
struct ITreeNode {
  int left = -1;    ///< -1 marks a leaf.
  int right = -1;
  size_t feature = 0;
  float threshold = 0.0f;
  size_t size = 0;  ///< Number of training rows reaching this node (leaf).
};

/// Average unsuccessful-search path length of a BST with n nodes.
double AveragePathLength(size_t n) {
  if (n <= 1) return 0.0;
  double h = std::log(static_cast<double>(n - 1)) + 0.5772156649;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

class ITree {
 public:
  /// Builds on the rows indexed by `idx` (mutated in place for partitioning).
  void Build(const std::vector<std::vector<float>>& rows,
             std::vector<size_t>& idx, size_t max_depth, Rng& rng) {
    nodes_.clear();
    BuildNode(rows, idx, 0, idx.size(), 0, max_depth, rng);
  }

  double PathLength(const std::vector<float>& x) const {
    size_t node = 0;
    double depth = 0.0;
    while (nodes_[node].left != -1) {
      node = x[nodes_[node].feature] < nodes_[node].threshold
                 ? static_cast<size_t>(nodes_[node].left)
                 : static_cast<size_t>(nodes_[node].right);
      depth += 1.0;
    }
    return depth + AveragePathLength(nodes_[node].size);
  }

 private:
  int BuildNode(const std::vector<std::vector<float>>& rows,
                std::vector<size_t>& idx, size_t begin, size_t end,
                size_t depth, size_t max_depth, Rng& rng) {
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    const size_t n = end - begin;
    if (n <= 1 || depth >= max_depth) {
      nodes_[static_cast<size_t>(node_id)].size = n;
      return node_id;
    }
    const size_t dim = rows[idx[begin]].size();
    // Pick a feature with spread; give up after a few tries (constant data).
    size_t feature = 0;
    float lo = 0, hi = 0;
    bool found = false;
    for (int attempt = 0; attempt < 8 && !found; ++attempt) {
      feature = rng.Index(dim);
      lo = hi = rows[idx[begin]][feature];
      for (size_t i = begin + 1; i < end; ++i) {
        lo = std::min(lo, rows[idx[i]][feature]);
        hi = std::max(hi, rows[idx[i]][feature]);
      }
      found = hi > lo;
    }
    if (!found) {
      nodes_[static_cast<size_t>(node_id)].size = n;
      return node_id;
    }
    const float threshold =
        static_cast<float>(rng.Uniform(lo, hi));
    auto mid_it = std::partition(
        idx.begin() + static_cast<ptrdiff_t>(begin),
        idx.begin() + static_cast<ptrdiff_t>(end),
        [&](size_t r) { return rows[r][feature] < threshold; });
    size_t mid = static_cast<size_t>(mid_it - idx.begin());
    if (mid == begin || mid == end) {
      // Degenerate split (threshold at boundary); make a leaf.
      nodes_[static_cast<size_t>(node_id)].size = n;
      return node_id;
    }
    int left = BuildNode(rows, idx, begin, mid, depth + 1, max_depth, rng);
    int right = BuildNode(rows, idx, mid, end, depth + 1, max_depth, rng);
    ITreeNode& node = nodes_[static_cast<size_t>(node_id)];
    node.left = left;
    node.right = right;
    node.feature = feature;
    node.threshold = threshold;
    return node_id;
  }

  std::vector<ITreeNode> nodes_;
};

}  // namespace

IForestDetector::IForestDetector(const Options& options) : options_(options) {
  KDSEL_CHECK(options_.window >= 1);
  KDSEL_CHECK(options_.num_trees >= 1);
}

StatusOr<std::vector<float>> IForestDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  if (series.length() < std::max<size_t>(w, 8)) {
    return Status::InvalidArgument("series too short for IForest");
  }
  // Window = 1 scores raw points; larger windows are z-normalized
  // subsequences, as in TSB-UAD.
  auto rows = EmbedWindows(series, w, /*z_normalize=*/w > 1);
  Rng rng(options_.seed);

  const size_t sample_size = std::min(options_.subsample, rows.size());
  const size_t max_depth = static_cast<size_t>(
      std::ceil(std::log2(std::max<double>(2.0, double(sample_size)))));
  const double c = AveragePathLength(sample_size);

  std::vector<double> avg_path(rows.size(), 0.0);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    auto idx = rng.Sample(rows.size(), sample_size);
    ITree tree;
    tree.Build(rows, idx, max_depth, rng);
    for (size_t i = 0; i < rows.size(); ++i) {
      avg_path[i] += tree.PathLength(rows[i]);
    }
  }
  std::vector<float> window_scores(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    double e = avg_path[i] / static_cast<double>(options_.num_trees);
    window_scores[i] =
        static_cast<float>(std::pow(2.0, -e / std::max(c, 1e-9)));
  }
  auto scores = WindowToPointScores(window_scores, w, series.length());
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
