#include "tsad/ocsvm.h"

#include <cmath>

#include "common/rng.h"
#include "tsad/util.h"

namespace kdsel::tsad {

StatusOr<std::vector<float>> OcsvmDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  if (series.length() < 2 * w) {
    return Status::InvalidArgument("series too short for OCSVM");
  }
  auto rows = EmbedWindows(series, w, /*z_normalize=*/true);
  const size_t n = rows.size();
  const size_t d = options_.num_features;
  const double gamma =
      options_.gamma > 0 ? options_.gamma : 1.0 / static_cast<double>(w);

  // Random Fourier features: phi(x) = sqrt(2/D) cos(Omega x + b),
  // Omega ~ N(0, 2*gamma I), b ~ U[0, 2pi).
  Rng rng(options_.seed);
  std::vector<float> omega(d * w);
  std::vector<float> phase(d);
  const double omega_std = std::sqrt(2.0 * gamma);
  for (float& v : omega) v = static_cast<float>(rng.Normal(0.0, omega_std));
  for (float& v : phase) {
    v = static_cast<float>(rng.Uniform(0.0, 2.0 * 3.14159265358979));
  }
  const float amp = static_cast<float>(std::sqrt(2.0 / double(d)));

  std::vector<std::vector<float>> phi(n, std::vector<float>(d));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const float* orow = omega.data() + j * w;
      double acc = phase[j];
      for (size_t t = 0; t < w; ++t) acc += orow[t] * rows[i][t];
      phi[i][j] = amp * static_cast<float>(std::cos(acc));
    }
  }

  // SGD on the one-class SVM objective. Per-sample gradients are the
  // full objective's gradient scaled by n (each sample contributes its
  // 1/n share of the regularizer and rho terms):
  //   g_w = w - [margin < 0] * phi_i / nu,   g_rho = -1 + [margin < 0]/nu.
  std::vector<double> weights(d, 0.0);
  double rho = 0.0;
  const double inv_nu = 1.0 / options_.nu;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    // Decaying step size.
    const double lr =
        options_.learning_rate / (1.0 + 0.2 * static_cast<double>(epoch));
    for (size_t i : order) {
      double margin = -rho;
      for (size_t j = 0; j < d; ++j) margin += weights[j] * phi[i][j];
      const bool violated = margin < 0.0;
      for (size_t j = 0; j < d; ++j) {
        double grad = weights[j];
        if (violated) grad -= inv_nu * phi[i][j];
        weights[j] -= lr * grad;
      }
      rho -= lr * (violated ? inv_nu - 1.0 : -1.0);
    }
  }

  std::vector<float> window_scores(n);
  for (size_t i = 0; i < n; ++i) {
    double margin = -rho;
    for (size_t j = 0; j < d; ++j) margin += weights[j] * phi[i][j];
    window_scores[i] = static_cast<float>(-margin);  // more negative = normal
  }
  auto scores = WindowToPointScores(window_scores, w, series.length());
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
