#ifndef KDSEL_TSAD_PCA_H_
#define KDSEL_TSAD_PCA_H_

#include "tsad/detector.h"

namespace kdsel::tsad {

/// PCA reconstruction detector: window embeddings are projected onto the
/// top principal components (found by orthogonal power iteration on the
/// covariance); points in subsequences with large reconstruction error
/// lie off the data's dominant hyperplane and score as anomalous.
class PcaDetector : public Detector {
 public:
  struct Options {
    size_t window = 24;
    size_t num_components = 4;
    size_t power_iters = 50;
    uint64_t seed = 13;
  };

  explicit PcaDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "PCA"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_PCA_H_
