#ifndef KDSEL_TSAD_DENSITY_H_
#define KDSEL_TSAD_DENSITY_H_

#include "tsad/detector.h"

namespace kdsel::tsad {

/// Local Outlier Factor (Breunig et al. 2000) over window embeddings:
/// the ratio of each window's k-NN reachability density to its
/// neighbours' densities. Exact O(n^2) neighbour search.
class LofDetector : public Detector {
 public:
  struct Options {
    size_t window = 16;
    size_t k = 10;
  };

  explicit LofDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "LOF"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

/// Histogram-based outlier score: a value histogram is built over the
/// series and each point scores the negative log height of its bin.
class HbosDetector : public Detector {
 public:
  struct Options {
    size_t num_bins = 20;
    size_t lag_features = 3;  ///< Uses value + this many lags as features.
  };

  explicit HbosDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "HBOS"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_DENSITY_H_
