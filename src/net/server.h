#ifndef KDSEL_NET_SERVER_H_
#define KDSEL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "net/shedder.h"
#include "serve/server.h"

namespace kdsel::net {

/// Tuning knobs for the TCP front end.
struct NetServerOptions {
  /// IPv4 "host:port" to listen on. Port 0 binds an ephemeral port
  /// (query it with port() after Start()).
  std::string listen = "127.0.0.1:0";
  /// Shard threads. Each owns its own SO_REUSEPORT listening socket,
  /// epoll instance and connections; shards share nothing but the
  /// InferenceServer behind them.
  size_t shards = 1;
  /// p99 SLO target for accepted requests in milliseconds; <= 0 turns
  /// admission control off.
  double slo_ms = 0.0;
  /// A connection whose current line exceeds this many bytes is sent
  /// one error reply and closed (protocol abuse / runaway input).
  size_t max_line_bytes = 1 << 20;
  /// Backpressure: stop reading from a connection whose pending output
  /// exceeds this many bytes; resume below half of it.
  size_t max_write_buffer_bytes = 4u << 20;
  /// listen(2) backlog per shard socket.
  int backlog = 1024;
  /// Hysteresis/eval tuning for the shedder; slo_us is derived from
  /// slo_ms by Start().
  ShedderOptions shedder;
};

/// Cheap structural peek at a request line, used for the shed fast
/// path: while overloaded, select requests are refused from the raw
/// bytes without paying for a full JSON parse. Heuristic by design (a
/// quoted string containing `"op"` can fool it); admitted requests
/// still go through the strict parser, so correctness never depends on
/// the peek.
struct LinePeek {
  bool is_select = true;  ///< "op" missing (the default op) or "select".
  int64_t id = -1;        ///< Top-level "id" when scannable.
};
LinePeek PeekRequestLine(const std::string& line);

/// Network front end for the NDJSON serving protocol.
///
/// N shard threads, each with its own SO_REUSEPORT listener and epoll
/// loop, speak the protocol of serve/protocol.h over TCP with
/// non-blocking reads/writes and per-connection bounded buffers.
/// Responses go back in per-connection submission order. Select
/// requests are handed to the InferenceServer in one batch per epoll
/// wake (one submission-lock acquisition), and completions flow back to
/// the owning shard through an eventfd, so no thread ever parks on a
/// future.
///
/// Admission control: when `slo_ms` is set, a Shedder watches the
/// windowed p99 of accepted requests and, while overloaded, refuses new
/// select requests with `{"id":N,"ok":false,"error":"overloaded"}`
/// (counted as `shed` in ServerStats) before they consume parse or
/// inference capacity.
///
/// Lifecycle: Start() binds and spawns shards; Stop() closes the
/// listeners, stops reading, drains every in-flight request, flushes
/// what the peers will accept, and joins. Stop this front end BEFORE
/// stopping the InferenceServer, so in-flight completions can drain.
class NetServer {
 public:
  /// The inference server must outlive this object and be Start()ed.
  NetServer(serve::InferenceServer* server, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  Status Start();
  void Stop();

  /// Bound port (after Start(); resolves a port-0 request).
  uint16_t port() const { return port_; }
  const NetServerOptions& options() const { return options_; }
  Shedder& shedder() { return shedder_; }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// One response slot; replies leave in slot order per connection.
  struct Slot {
    enum class Kind {
      kPending,  ///< Select in flight; `line` arrives via completion.
      kReady,    ///< `line` is final.
      kStats,    ///< Formatted lazily when it reaches the flush front,
                 ///< so the snapshot covers every earlier reply.
    };
    Kind kind = Kind::kReady;
    int64_t id = -1;
    std::string line;
  };

  struct Conn {
    int fd = -1;
    uint64_t gen = 0;
    std::string rbuf;       ///< Unconsumed input (at most one partial line).
    std::string wbuf;       ///< Pending output.
    size_t woff = 0;        ///< Consumed prefix of wbuf.
    uint32_t armed = 0;     ///< Events currently registered with epoll.
    uint64_t base_seq = 0;  ///< Sequence number of slots.front().
    std::deque<Slot> slots;
    size_t pending = 0;     ///< Slots still waiting on a completion.
    bool stop_reading = false;  ///< EOF or quit seen (or server stopping).
    bool saw_quit = false;      ///< quit op: discard any later input too.
    bool paused = false;        ///< Reads off due to write backpressure.
    bool dead = false;          ///< Hard error: close, dropping output.
  };

  /// A resolved select request on its way back to the shard thread.
  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    uint64_t seq = 0;
    std::string line;
  };

  struct Shard {
    NetServer* owner = nullptr;
    size_t index = 0;
    int listen_fd = -1;
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd: completions arrived or Stop() called.
    std::thread thread;
    uint64_t next_gen = 0;  ///< Generation source for accepted conns.
    std::map<int, std::unique_ptr<Conn>> conns;  ///< Shard-thread only.
    std::mutex done_mu;
    std::vector<Completion> done KDSEL_GUARDED_BY(done_mu);
    /// Select slots submitted but not yet seen back by this shard; the
    /// loop only exits once this drains (the InferenceServer resolves
    /// every accepted request, so this always terminates).
    std::atomic<uint64_t> outstanding{0};
  };

  void ShardLoop(Shard& shard);
  void AcceptReady(Shard& shard);
  void ReadReady(Shard& shard, Conn& conn, int64_t now_us,
                 std::vector<serve::InferenceServer::AsyncItem>& submits);
  void ProcessLine(Shard& shard, Conn& conn, const std::string& line,
                   int64_t now_us,
                   std::vector<serve::InferenceServer::AsyncItem>& submits);
  void DrainCompletions(Shard& shard);
  void PushCompletion(Shard& shard, Completion completion);
  /// Moves ready slots into wbuf, writes what the socket accepts,
  /// updates epoll interest (EPOLLOUT, read pause/resume) and closes
  /// the connection when it is finished or broken.
  void FlushConn(Shard& shard, Conn& conn);
  void CloseConn(Shard& shard, Conn& conn);
  void EnqueueReady(Conn& conn, std::string line);
  void LineOverflow(Conn& conn);

  serve::InferenceServer* server_;
  NetServerOptions options_;
  Shedder shedder_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  std::mutex lifecycle_mu_;
  bool started_ KDSEL_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ KDSEL_GUARDED_BY(lifecycle_mu_) = false;
};

}  // namespace kdsel::net

#endif  // KDSEL_NET_SERVER_H_
