#ifndef KDSEL_NET_SERVER_H_
#define KDSEL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "net/shedder.h"
#include "obs/flight_recorder.h"
#include "serve/server.h"

namespace kdsel::net {

/// Tuning knobs for the TCP front end.
struct NetServerOptions {
  /// IPv4 "host:port" to listen on. Port 0 binds an ephemeral port
  /// (query it with port() after Start()).
  std::string listen = "127.0.0.1:0";
  /// Shard threads. Each owns its own SO_REUSEPORT listening socket,
  /// epoll instance and connections; shards share nothing but the
  /// InferenceServer behind them.
  size_t shards = 1;
  /// p99 SLO target for accepted requests in milliseconds; <= 0 turns
  /// admission control off.
  double slo_ms = 0.0;
  /// A connection whose current line exceeds this many bytes is sent
  /// one error reply and closed (protocol abuse / runaway input).
  size_t max_line_bytes = 1 << 20;
  /// Backpressure: stop reading from a connection whose pending output
  /// exceeds this many bytes; resume below half of it.
  size_t max_write_buffer_bytes = 4u << 20;
  /// listen(2) backlog per shard socket.
  int backlog = 1024;
  /// Hysteresis/eval tuning for the shedder; slo_us is derived from
  /// slo_ms by Start().
  ShedderOptions shedder;
};

/// Cheap structural peek at a request line, used for the shed fast
/// path: while overloaded, select requests are refused from the raw
/// bytes without paying for a full JSON parse. Heuristic by design (a
/// quoted string containing `"op"` can fool it); admitted requests
/// still go through the strict parser, so correctness never depends on
/// the peek.
struct LinePeek {
  bool is_select = true;  ///< "op" missing (the default op) or "select".
  int64_t id = -1;        ///< Top-level "id" when scannable.
  /// Top-level "trace" when scannable AND entirely in the sanitized
  /// charset ([A-Za-z0-9._:-], <= 23 chars); empty otherwise. The
  /// charset restriction is what makes splicing the peeked bytes into a
  /// shed reply JSON-safe without a full parse.
  char trace[obs::FlightRecord::kTraceBytes] = {};
};
LinePeek PeekRequestLine(const std::string& line);

/// Network front end for the NDJSON serving protocol.
///
/// N shard threads, each with its own SO_REUSEPORT listener and epoll
/// loop, speak the protocol of serve/protocol.h over TCP with
/// non-blocking reads/writes and per-connection bounded buffers.
/// Responses go back in per-connection submission order. Select
/// requests are handed to the InferenceServer in one batch per epoll
/// wake (one submission-lock acquisition), and completions flow back to
/// the owning shard through an eventfd, so no thread ever parks on a
/// future.
///
/// Admission control: when `slo_ms` is set, a Shedder watches the
/// windowed p99 of accepted requests and, while overloaded, refuses new
/// select requests with `{"id":N,"ok":false,"error":"overloaded"}`
/// (counted as `shed` in ServerStats) before they consume parse or
/// inference capacity.
///
/// Observability: every select (and every refusal) carries a trace id
/// -- the client's "trace" field when it passes SanitizeTraceId, else a
/// generated `s<shard>-<seq>` -- which is echoed on the reply and keyed
/// into an always-on flight recorder together with the request's stage
/// decomposition (queue/batch_wait/compute/write). Stage latencies feed
/// the `kdsel.net.stage.*` histograms; the `ops` op (see
/// serve/protocol.h) exports all of it live. See DESIGN.md "Request
/// observability".
///
/// Lifecycle: Start() binds and spawns shards; Stop() closes the
/// listeners, stops reading, drains every in-flight request, flushes
/// what the peers will accept, and joins. Stop this front end BEFORE
/// stopping the InferenceServer, so in-flight completions can drain.
class NetServer {
 public:
  /// The inference server must outlive this object and be Start()ed.
  NetServer(serve::InferenceServer* server, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  Status Start();
  void Stop();

  /// Bound port (after Start(); resolves a port-0 request).
  uint16_t port() const { return port_; }
  const NetServerOptions& options() const { return options_; }
  Shedder& shedder() { return shedder_; }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// The shard-side flight recorder (for tests and the "ops" op).
  obs::FlightRecorder& flight_recorder() { return flight_; }

 private:
  /// Per-request observability riding along with a response slot from
  /// ingress until the reply bytes are handed to the kernel. POD with
  /// an inline trace id so slots stay allocation-free to annotate.
  struct ReqMeta {
    char trace[obs::FlightRecord::kTraceBytes] = {};
    int64_t ingress_us = 0;  ///< Epoll-wake stamp when the line arrived.
    int64_t done_us = 0;     ///< Worker completion stamp (selects only).
    /// Ingress -> worker-dequeue residual not attributed to batch
    /// formation: socket parse, submit and queue wait. A residual by
    /// construction, so queue + batch_wait + compute + write == total.
    float queue_us = 0.0f;
    float batch_wait_us = 0.0f;  ///< Submit -> micro-batch formed.
    float compute_us = 0.0f;     ///< Worker dequeue -> response ready.
    obs::FlightRecord::Verdict verdict = obs::FlightRecord::Verdict::kError;
    bool int8_variant = false;
    bool traced = false;  ///< Record stage metrics + flight on flush.
  };

  /// One response slot; replies leave in slot order per connection.
  struct Slot {
    enum class Kind {
      kPending,  ///< Select in flight; `line` arrives via completion.
      kReady,    ///< `line` is final.
      kStats,    ///< Formatted lazily when it reaches the flush front,
                 ///< so the snapshot covers every earlier reply.
      kOps,      ///< Telemetry reply; formatted lazily like kStats.
    };
    Kind kind = Kind::kReady;
    int64_t id = -1;
    std::string line;
    std::string view;  ///< "ops" payload selector (kOps only).
    ReqMeta meta;
  };

  struct Conn {
    int fd = -1;
    uint64_t gen = 0;
    std::string rbuf;       ///< Unconsumed input (at most one partial line).
    std::string wbuf;       ///< Pending output.
    size_t woff = 0;        ///< Consumed prefix of wbuf.
    uint32_t armed = 0;     ///< Events currently registered with epoll.
    uint64_t base_seq = 0;  ///< Sequence number of slots.front().
    std::deque<Slot> slots;
    size_t pending = 0;     ///< Slots still waiting on a completion.
    bool stop_reading = false;  ///< EOF or quit seen (or server stopping).
    bool saw_quit = false;      ///< quit op: discard any later input too.
    bool paused = false;        ///< Reads off due to write backpressure.
    bool dead = false;          ///< Hard error: close, dropping output.
  };

  /// A resolved select request on its way back to the shard thread.
  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    uint64_t seq = 0;
    std::string line;
    // Stage attribution from the inference side, merged into the slot's
    // ReqMeta by DrainCompletions (which derives queue_us as the
    // ingress->dequeue residual, so it is not carried here).
    int64_t done_us = 0;
    float batch_wait_us = 0.0f;
    float compute_us = 0.0f;
    obs::FlightRecord::Verdict verdict = obs::FlightRecord::Verdict::kError;
    bool int8_variant = false;
  };

  struct Shard {
    NetServer* owner = nullptr;
    size_t index = 0;
    int listen_fd = -1;
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd: completions arrived or Stop() called.
    std::thread thread;
    uint64_t next_gen = 0;  ///< Generation source for accepted conns.
    uint64_t trace_seq = 0;  ///< Source for generated trace ids.
    std::map<int, std::unique_ptr<Conn>> conns;  ///< Shard-thread only.
    std::mutex done_mu;
    std::vector<Completion> done KDSEL_GUARDED_BY(done_mu);
    /// Select slots submitted but not yet seen back by this shard; the
    /// loop only exits once this drains (the InferenceServer resolves
    /// every accepted request, so this always terminates).
    std::atomic<uint64_t> outstanding{0};
    /// FlushConn's reusable staging area for traced slot metadata
    /// (shard-thread only; reused so flushing never allocates in steady
    /// state).
    std::vector<ReqMeta> flush_scratch;
  };

  void ShardLoop(Shard& shard);
  void AcceptReady(Shard& shard);
  void ReadReady(Shard& shard, Conn& conn, int64_t now_us,
                 std::vector<serve::InferenceServer::AsyncItem>& submits);
  void ProcessLine(Shard& shard, Conn& conn, const std::string& line,
                   int64_t now_us,
                   std::vector<serve::InferenceServer::AsyncItem>& submits);
  void DrainCompletions(Shard& shard);
  void PushCompletion(Shard& shard, Completion completion);
  /// Moves ready slots into wbuf, writes what the socket accepts,
  /// updates epoll interest (EPOLLOUT, read pause/resume) and closes
  /// the connection when it is finished or broken.
  void FlushConn(Shard& shard, Conn& conn);
  void CloseConn(Shard& shard, Conn& conn);
  void EnqueueReady(Conn& conn, std::string line);
  void LineOverflow(Shard& shard, Conn& conn);
  /// Records stage histograms and the flight record for one traced
  /// slot whose reply bytes were just handed to the send loop.
  /// `flushed_us` is a single per-FlushConn timestamp shared by every
  /// slot flushed in that call.
  void RecordFlushed(const ReqMeta& meta, int64_t flushed_us);
  /// Renders the shedder's current state as a JSON object for "ops"
  /// snapshot replies.
  std::string ShedderJson() const;

  serve::InferenceServer* server_;
  NetServerOptions options_;
  Shedder shedder_;
  obs::FlightRecorder flight_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  std::mutex lifecycle_mu_;
  bool started_ KDSEL_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ KDSEL_GUARDED_BY(lifecycle_mu_) = false;
};

}  // namespace kdsel::net

#endif  // KDSEL_NET_SERVER_H_
