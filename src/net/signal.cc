#include "net/signal.h"

#include <csignal>
#include <cstring>

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace kdsel::net {

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
int g_shutdown_fd = -1;

void OnShutdownSignal(int /*signo*/) {
  g_shutdown = 1;
  if (g_shutdown_fd >= 0) {
    const uint64_t one = 1;
    // write(2) is async-signal-safe; the result is advisory (the flag
    // alone is enough for pollers that time out).
    [[maybe_unused]] ssize_t n =
        write(g_shutdown_fd, &one, sizeof(one));
  }
}

}  // namespace

Status InstallShutdownHandlers() {
  if (g_shutdown_fd >= 0) return Status::OK();
  const int fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  g_shutdown_fd = fd;

  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // Deliberately no SA_RESTART: see the header.
  if (sigaction(SIGINT, &action, nullptr) != 0 ||
      sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::IoError(std::string("sigaction: ") + std::strerror(errno));
  }
  return Status::OK();
}

bool ShutdownRequested() { return g_shutdown != 0; }

int ShutdownEventFd() { return g_shutdown_fd; }

void RequestShutdownForTesting() { OnShutdownSignal(SIGTERM); }

void WaitForShutdownSignal() {
  while (!ShutdownRequested()) {
    pollfd pfd = {};
    pfd.fd = g_shutdown_fd;
    pfd.events = POLLIN;
    // The timeout covers the (unlikely) install-less caller and the
    // race where the signal lands between the flag check and poll().
    poll(&pfd, 1, 200);
  }
}

}  // namespace kdsel::net
