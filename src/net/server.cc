#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "net/listener.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace kdsel::net {

namespace {

/// Monotonic microseconds on the codebase-wide obs timebase.
int64_t NowUs() { return static_cast<int64_t>(obs::NowNs() / 1000); }

/// The canned shed reply: cheap to build by construction (no JSON
/// formatter), identical whether the refusal came from the SLO shedder
/// or from submit-queue backpressure. `trace` must be in the sanitized
/// trace charset (it is spliced raw); "" omits the field.
std::string OverloadedLine(int64_t id, const char* trace = "") {
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"ok\":false,\"error\":\"overloaded\"";
  if (trace[0] != '\0') {
    out += ",\"trace\":\"";
    out += trace;
    out += '"';
  }
  out += '}';
  return out;
}

/// Mirrors serve::SanitizeTraceId's charset; duplicated here so the
/// shed fast path can validate a peeked trace without a string
/// allocation. The charset is what makes raw-splicing safe.
bool IsTraceChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' ||
         c == '-';
}

/// Deterministic server-generated trace id for requests whose client
/// sent none: `s<shard>-<per-shard sequence>`. Shard-thread only (the
/// sequence lives on the Shard).
void GenerateTrace(size_t shard_index, uint64_t& trace_seq,
                   char out[obs::FlightRecord::kTraceBytes]) {
  std::snprintf(out, obs::FlightRecord::kTraceBytes, "s%zu-%llu", shard_index,
                static_cast<unsigned long long>(++trace_seq));
}

/// Drain deadline for peers that stop reading during shutdown: sockets
/// whose pending output cannot be written within this budget are closed
/// with the output dropped (in-flight inference completions are always
/// awaited regardless; only unwritable bytes are abandoned).
constexpr int64_t kStopFlushBudgetUs = 5 * 1000 * 1000;

/// True when `token` appears at `pos` as a JSON key (preceded only by
/// `{` or `,` modulo whitespace, followed by a colon).
bool IsTopLevelKey(const std::string& line, size_t pos, size_t len) {
  size_t before = pos;
  while (before > 0 && std::isspace(static_cast<unsigned char>(
                           line[before - 1]))) {
    --before;
  }
  if (before == 0 || (line[before - 1] != '{' && line[before - 1] != ',')) {
    return false;
  }
  size_t after = pos + len;
  while (after < line.size() &&
         std::isspace(static_cast<unsigned char>(line[after]))) {
    ++after;
  }
  return after < line.size() && line[after] == ':';
}

/// Scans for `"key":` at top level-ish positions and returns the index
/// just past the colon, or npos.
size_t FindKeyValue(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\"";
  size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    if (IsTopLevelKey(line, pos, needle.size())) {
      size_t after = pos + needle.size();
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after]))) {
        ++after;
      }
      return after + 1;  // Past the colon (IsTopLevelKey verified it).
    }
    pos += 1;
  }
  return std::string::npos;
}

}  // namespace

KDSEL_HOT LinePeek PeekRequestLine(const std::string& line) {
  LinePeek peek;
  size_t pos = FindKeyValue(line, "op");
  if (pos != std::string::npos) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    // Anything other than the string "select" (including malformed
    // values) is not shed on the fast path; the full parser owns it.
    peek.is_select =
        line.compare(pos, 8, "\"select\"") == 0;
  }
  pos = FindKeyValue(line, "id");
  if (pos != std::string::npos) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    bool negative = false;
    if (pos < line.size() && line[pos] == '-') {
      negative = true;
      ++pos;
    }
    int64_t value = 0;
    bool any = false;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      value = value * 10 + (line[pos] - '0');
      any = true;
      ++pos;
    }
    if (any) peek.id = negative ? -value : value;
  }
  pos = FindKeyValue(line, "trace");
  if (pos != std::string::npos) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos < line.size() && line[pos] == '"') {
      ++pos;
      size_t out = 0;
      bool usable = false;
      while (pos < line.size()) {
        const char c = line[pos];
        if (c == '"') {
          usable = true;  // Closing quote reached within budget.
          break;
        }
        // Escapes, exotic characters and over-long ids all disqualify
        // the peek (the id is dropped, not an error): only ids that can
        // be spliced raw are worth recovering on the fast path.
        if (!IsTraceChar(c) ||
            out + 1 >= obs::FlightRecord::kTraceBytes) {
          break;
        }
        peek.trace[out++] = c;
        ++pos;
      }
      peek.trace[usable ? out : 0] = '\0';
    }
  }
  return peek;
}

NetServer::NetServer(serve::InferenceServer* server, NetServerOptions options)
    : server_(server), options_(std::move(options)), shedder_([&] {
        ShedderOptions shed = options_.shedder;
        shed.slo_us = options_.slo_ms * 1000.0;
        return shed;
      }()) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (server_ == nullptr) {
    return Status::InvalidArgument("net server needs an inference server");
  }
  if (started_) return Status::FailedPrecondition("net server already started");
  if (options_.shards == 0) {
    return Status::InvalidArgument("shards must be positive");
  }
  if (options_.max_line_bytes == 0 || options_.max_write_buffer_bytes == 0) {
    return Status::InvalidArgument("buffer caps must be positive");
  }
  KDSEL_ASSIGN_OR_RETURN(HostPort address, ParseHostPort(options_.listen));

  auto cleanup = [&] {
    for (auto& shard : shards_) {
      if (shard->listen_fd >= 0) close(shard->listen_fd);
      if (shard->epoll_fd >= 0) close(shard->epoll_fd);
      if (shard->wake_fd >= 0) close(shard->wake_fd);
    }
    shards_.clear();
  };

  for (size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->owner = this;
    shard->index = i;

    auto listener = OpenReusePortListener(address, options_.backlog);
    if (!listener.ok()) {
      cleanup();
      return listener.status();
    }
    shard->listen_fd = *listener;
    if (i == 0) {
      // Resolve an ephemeral-port request so the remaining shards (and
      // the caller) bind/see the same concrete port.
      auto port = LocalPort(shard->listen_fd);
      if (!port.ok()) {
        close(shard->listen_fd);
        cleanup();
        return port.status();
      }
      port_ = *port;
      address.port = *port;
    }

    shard->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    shard->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->wake_fd < 0) {
      Status status = Status::IoError(std::string("epoll_create1/eventfd: ") +
                                      std::strerror(errno));
      shards_.push_back(std::move(shard));
      cleanup();
      return status;
    }
    epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = shard->listen_fd;
    epoll_event wake = {};
    wake.events = EPOLLIN;
    wake.data.fd = shard->wake_fd;
    if (epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->listen_fd, &ev) != 0 ||
        epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &wake) != 0) {
      Status status =
          Status::IoError(std::string("epoll_ctl: ") + std::strerror(errno));
      shards_.push_back(std::move(shard));
      cleanup();
      return status;
    }
    shards_.push_back(std::move(shard));
  }

  for (auto& shard : shards_) {
    shard->thread = std::thread(&NetServer::ShardLoop, this, std::ref(*shard));
  }
  started_ = true;
  return Status::OK();
}

void NetServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  for (auto& shard : shards_) {
    [[maybe_unused]] ssize_t n = write(shard->wake_fd, &one, sizeof(one));
  }
  for (auto& shard : shards_) {
    shard->thread.join();
    close(shard->epoll_fd);
    close(shard->wake_fd);
  }
}

void NetServer::PushCompletion(Shard& shard, Completion completion) {
  // The wake write happens under the lock on purpose: once the shard
  // has drained this completion from the queue (which requires the
  // lock), the eventfd write has already retired, so the shard can
  // never exit with a write to its wake_fd still in flight.
  std::lock_guard<std::mutex> lock(shard.done_mu);
  shard.done.push_back(std::move(completion));
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(shard.wake_fd, &one, sizeof(one));
}

void NetServer::EnqueueReady(Conn& conn, std::string line) {
  Slot slot;
  slot.kind = Slot::Kind::kReady;
  slot.line = std::move(line);
  conn.slots.push_back(std::move(slot));
}

void NetServer::AcceptReady(Shard& shard) {
  static obs::Counter& accepted =
      obs::MetricsRegistry::Global().GetCounter("kdsel.net.connections");
  for (;;) {
    const int fd = accept4(shard.listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      // EMFILE/ENFILE: out of descriptors; the pending connection stays
      // in the backlog and is retried on the next accept wake.
      break;
    }
    // Best effort: NDJSON request/response is latency-bound, but a
    // kernel refusing TCP_NODELAY is not fatal.
    Status nodelay = SetNoDelay(fd);
    (void)nodelay;
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->gen = ++shard.next_gen;
    conn->armed = EPOLLIN;
    epoll_event ev = {};
    ev.events = conn->armed;
    ev.data.fd = fd;
    if (epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    shard.conns[fd] = std::move(conn);
    accepted.Increment();
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::ProcessLine(
    Shard& shard, Conn& conn, const std::string& line, int64_t now_us,
    std::vector<serve::InferenceServer::AsyncItem>& submits) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;

  // SLO admission control, before the full JSON parse: refusing a
  // request must stay cheap precisely when the server has no capacity
  // to spare. The refusal still carries a trace id (peeked from the raw
  // bytes or generated) so shed requests are attributable end to end.
  if (options_.slo_ms > 0.0) {
    const LinePeek peek = PeekRequestLine(line);
    if (peek.is_select && !shedder_.Admit(now_us)) {
      server_->stats().RecordShed();
      char trace[obs::FlightRecord::kTraceBytes];
      if (peek.trace[0] != '\0') {
        std::memcpy(trace, peek.trace, sizeof(trace));
      } else {
        GenerateTrace(shard.index, shard.trace_seq, trace);
      }
      EnqueueReady(conn, OverloadedLine(peek.id, trace));
      Slot& slot = conn.slots.back();
      slot.meta.traced = true;
      slot.meta.verdict = obs::FlightRecord::Verdict::kShed;
      slot.meta.ingress_us = now_us;
      std::memcpy(slot.meta.trace, trace, sizeof(trace));
      return;
    }
  }

  int64_t error_id = -1;
  auto parsed = serve::ParseRequestLine(line, &error_id);
  if (!parsed.ok()) {
    // Rare path: one extra structural scan recovers the client's trace
    // id from the unparseable line when it has a usable one.
    char trace[obs::FlightRecord::kTraceBytes];
    std::memcpy(trace, PeekRequestLine(line).trace, sizeof(trace));
    if (trace[0] == '\0') GenerateTrace(shard.index, shard.trace_seq, trace);
    EnqueueReady(conn, serve::FormatErrorResponse(error_id, parsed.status(),
                                                  trace));
    Slot& slot = conn.slots.back();
    slot.meta.traced = true;
    slot.meta.verdict = obs::FlightRecord::Verdict::kError;
    slot.meta.ingress_us = now_us;
    std::memcpy(slot.meta.trace, trace, sizeof(trace));
    return;
  }
  serve::WireRequest& request = *parsed;
  serve::SelectorRegistry& registry = server_->registry();

  switch (request.op) {
    case serve::WireRequest::Op::kQuit:
      // Drain in-flight replies, then close. Remaining buffered input
      // is discarded by the caller.
      conn.stop_reading = true;
      conn.saw_quit = true;
      break;
    case serve::WireRequest::Op::kList:
      EnqueueReady(conn, serve::FormatListResponse(request.id, registry));
      break;
    case serve::WireRequest::Op::kReload: {
      Status status = request.selector.empty() ? registry.ReloadAll()
                                               : registry.Load(request.selector);
      if (status.ok()) server_->stats().RecordReload();
      EnqueueReady(conn, status.ok()
                             ? serve::FormatOkResponse(request.id)
                             : serve::FormatErrorResponse(request.id, status));
      break;
    }
    case serve::WireRequest::Op::kStats: {
      Slot slot;
      slot.kind = Slot::Kind::kStats;
      slot.id = request.id;
      conn.slots.push_back(std::move(slot));
      break;
    }
    case serve::WireRequest::Op::kOps: {
      Slot slot;
      slot.kind = Slot::Kind::kOps;
      slot.id = request.id;
      slot.view = request.view;
      conn.slots.push_back(std::move(slot));
      break;
    }
    case serve::WireRequest::Op::kSelect: {
      static obs::Counter& requests =
          obs::MetricsRegistry::Global().GetCounter("kdsel.net.requests");
      requests.Increment();
      char trace[obs::FlightRecord::kTraceBytes];
      if (!request.trace.empty()) {
        std::snprintf(trace, sizeof(trace), "%s", request.trace.c_str());
      } else {
        GenerateTrace(shard.index, shard.trace_seq, trace);
      }
      const uint64_t seq = conn.base_seq + conn.slots.size();
      Slot slot;
      slot.kind = Slot::Kind::kPending;
      slot.id = request.id;
      slot.meta.traced = true;
      slot.meta.ingress_us = now_us;
      std::memcpy(slot.meta.trace, trace, sizeof(trace));
      conn.slots.push_back(std::move(slot));
      ++conn.pending;
      shard.outstanding.fetch_add(1, std::memory_order_relaxed);

      serve::InferenceServer::AsyncItem item;
      item.request.selector = request.selector;
      item.request.run_detection = request.detect;
      const bool labeled = request.series.has_labels();
      const bool want_scores = request.want_scores;
      item.request.series = std::move(request.series);
      const int64_t id = request.id;
      const int fd = conn.fd;
      const uint64_t gen = conn.gen;
      // ".int8" names route to the quantized sibling (protocol variant
      // rewrite); attribute the request in the flight recorder.
      const bool int8_variant =
          request.selector.size() >= 5 &&
          request.selector.compare(request.selector.size() - 5, 5, ".int8") ==
              0;
      std::string trace_echo(trace);
      Shard* shard_ptr = &shard;
      const bool slo = options_.slo_ms > 0.0;
      item.done = [this, shard_ptr, fd, gen, seq, id, labeled, want_scores,
                   int8_variant, trace_echo = std::move(trace_echo),
                   slo](StatusOr<serve::SelectResponse> response) {
        Completion completion;
        completion.fd = fd;
        completion.gen = gen;
        completion.seq = seq;
        completion.int8_variant = int8_variant;
        if (response.ok()) {
          if (slo) shedder_.RecordLatency(response->timing.total_us);
          const serve::RequestTiming& timing = response->timing;
          completion.verdict = obs::FlightRecord::Verdict::kOk;
          completion.done_us = timing.done_us;
          completion.batch_wait_us = static_cast<float>(timing.batch_wait_us);
          completion.compute_us = static_cast<float>(timing.compute_us);
          completion.line = serve::FormatSelectResponse(id, *response, labeled,
                                                        want_scores,
                                                        trace_echo);
        } else if (response.status().code() ==
                       StatusCode::kFailedPrecondition &&
                   response.status().message().find("queue full") !=
                       std::string::npos) {
          // Backpressure from the bounded submit queue is load shedding
          // by another door: same cheap reply, same counter, and no
          // latency sample (the request never ran).
          server_->stats().RecordShed();
          completion.verdict = obs::FlightRecord::Verdict::kShed;
          completion.line = OverloadedLine(id, trace_echo.c_str());
        } else {
          completion.verdict = obs::FlightRecord::Verdict::kError;
          completion.line = serve::FormatErrorResponse(id, response.status(),
                                                       trace_echo);
        }
        PushCompletion(*shard_ptr, std::move(completion));
      };
      submits.push_back(std::move(item));
      break;
    }
  }
}

void NetServer::ReadReady(
    Shard& shard, Conn& conn, int64_t now_us,
    std::vector<serve::InferenceServer::AsyncItem>& submits) {
  char buffer[64 * 1024];
  while (!conn.stop_reading && !conn.dead) {
    const ssize_t n = read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn.rbuf.append(buffer, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buffer)) break;  // Drained.
      continue;
    }
    if (n == 0) {
      conn.stop_reading = true;  // EOF; half-close: keep flushing replies.
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.dead = true;
    return;
  }

  size_t start = 0;
  for (;;) {
    const size_t newline = conn.rbuf.find('\n', start);
    if (newline == std::string::npos) break;
    size_t end = newline;
    if (end > start && conn.rbuf[end - 1] == '\r') --end;
    if (end - start > options_.max_line_bytes) {
      LineOverflow(shard, conn);
      start = conn.rbuf.size();
      break;
    }
    const std::string line = conn.rbuf.substr(start, end - start);
    start = newline + 1;
    ProcessLine(shard, conn, line, now_us, submits);
    if (conn.saw_quit) {
      // quit: everything after it on the wire is intentionally dropped.
      // (EOF is different: lines received before the FIN all run.)
      start = conn.rbuf.size();
      break;
    }
  }
  conn.rbuf.erase(0, start);

  if (!conn.stop_reading && conn.rbuf.size() > options_.max_line_bytes) {
    LineOverflow(shard, conn);
    conn.rbuf.clear();
  }
}

/// Rejects a line (complete or still accumulating) past the length cap:
/// one error reply, then the connection drains its queue and closes.
/// The line is abusive by definition, so no trace peek: the refusal is
/// recorded under a generated trace id.
void NetServer::LineOverflow(Shard& shard, Conn& conn) {
  static obs::Counter& overflows =
      obs::MetricsRegistry::Global().GetCounter("kdsel.net.line_overflows");
  overflows.Increment();
  char trace[obs::FlightRecord::kTraceBytes];
  GenerateTrace(shard.index, shard.trace_seq, trace);
  EnqueueReady(conn, serve::FormatErrorResponse(
                         -1,
                         Status::InvalidArgument(
                             "line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes"),
                         trace));
  Slot& slot = conn.slots.back();
  slot.meta.traced = true;
  slot.meta.verdict = obs::FlightRecord::Verdict::kOverflow;
  slot.meta.ingress_us = NowUs();
  std::memcpy(slot.meta.trace, trace, sizeof(trace));
  conn.stop_reading = true;  // Error reply flushes, then the conn closes.
}

void NetServer::DrainCompletions(Shard& shard) {
  uint64_t counter = 0;
  [[maybe_unused]] ssize_t n =
      read(shard.wake_fd, &counter, sizeof(counter));
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(shard.done_mu);
    done.swap(shard.done);
  }
  for (Completion& completion : done) {
    shard.outstanding.fetch_sub(1, std::memory_order_relaxed);
    auto it = shard.conns.find(completion.fd);
    if (it == shard.conns.end() || it->second->gen != completion.gen) {
      continue;  // The connection died before its reply resolved.
    }
    Conn& conn = *it->second;
    const uint64_t index = completion.seq - conn.base_seq;
    if (index >= conn.slots.size()) continue;  // Defensive; cannot happen.
    Slot& slot = conn.slots[static_cast<size_t>(index)];
    slot.kind = Slot::Kind::kReady;
    slot.line = std::move(completion.line);
    slot.meta.done_us = completion.done_us;
    slot.meta.batch_wait_us = completion.batch_wait_us;
    slot.meta.compute_us = completion.compute_us;
    // Queue is the ingress->dequeue span minus batch formation and
    // compute: socket parse, submit and queue wait. Charging the
    // residual (rather than serve's submit->dequeue clock) makes the
    // four stages sum to the e2e total exactly, so per-stage p50s
    // reconcile against the kdsel.net.e2e histogram.
    if (completion.done_us > 0 &&
        completion.verdict == obs::FlightRecord::Verdict::kOk) {
      const double span_us = static_cast<double>(
          std::max<int64_t>(completion.done_us - slot.meta.ingress_us, 0));
      slot.meta.queue_us = static_cast<float>(
          std::max(span_us - completion.batch_wait_us - completion.compute_us,
                   0.0));
    }
    slot.meta.verdict = completion.verdict;
    slot.meta.int8_variant = completion.int8_variant;
    --conn.pending;
  }
}

void NetServer::FlushConn(Shard& shard, Conn& conn) {
  if (conn.dead) {
    CloseConn(shard, conn);
    return;
  }
  // Release the ready prefix in submission order. Traced slots park
  // their metadata in the shard scratch; they are recorded below, after
  // the send loop, under ONE write timestamp per flush (so tracing adds
  // one clock read per FlushConn, not per request).
  shard.flush_scratch.clear();
  while (!conn.slots.empty()) {
    Slot& front = conn.slots.front();
    if (front.kind == Slot::Kind::kPending) break;
    if (front.kind == Slot::Kind::kStats) {
      // Formatted only now, when every earlier reply has left the
      // queue, so the snapshot covers all previously answered requests.
      front.line = serve::FormatStatsResponse(front.id, *server_);
    } else if (front.kind == Slot::Kind::kOps) {
      serve::OpsExtras extras;
      extras.shedder_json = ShedderJson();
      extras.flight_json = flight_.DumpJson();
      front.line =
          serve::FormatOpsResponse(front.id, front.view, *server_, extras);
    }
    if (front.meta.traced) shard.flush_scratch.push_back(front.meta);
    conn.wbuf += front.line;
    conn.wbuf.push_back('\n');
    conn.slots.pop_front();
    ++conn.base_seq;
  }

  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n = send(conn.fd, conn.wbuf.data() + conn.woff,
                           conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(shard, conn);  // Peer gone; replies are undeliverable.
    return;  // Scratch metas are dropped with their unsent replies.
  }
  if (conn.woff == conn.wbuf.size() && !conn.wbuf.empty()) {
    conn.wbuf.clear();
    conn.woff = 0;
  }

  if (!shard.flush_scratch.empty()) {
    const int64_t flushed_us = NowUs();
    for (const ReqMeta& meta : shard.flush_scratch) {
      RecordFlushed(meta, flushed_us);
    }
    shard.flush_scratch.clear();
  }

  if (conn.stop_reading && conn.slots.empty() &&
      conn.woff == conn.wbuf.size()) {
    CloseConn(shard, conn);
    return;
  }

  // Backpressure: a peer that stops reading its replies stops being
  // read. Resume at half the cap so the edge does not chatter.
  const size_t backlog = conn.wbuf.size() - conn.woff;
  if (!conn.paused && backlog > options_.max_write_buffer_bytes) {
    conn.paused = true;
  } else if (conn.paused && backlog < options_.max_write_buffer_bytes / 2) {
    conn.paused = false;
  }

  uint32_t want = 0;
  if (!conn.stop_reading && !conn.paused) want |= EPOLLIN;
  if (backlog > 0) want |= EPOLLOUT;
  if (want != conn.armed) {
    epoll_event ev = {};
    ev.events = want;
    ev.data.fd = conn.fd;
    if (epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
      conn.armed = want;
    }
  }
}

void NetServer::CloseConn(Shard& shard, Conn& conn) {
  epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  close(conn.fd);
  shard.conns.erase(conn.fd);  // Invalidates `conn`.
}

void NetServer::RecordFlushed(const ReqMeta& meta, int64_t flushed_us) {
  static obs::Histogram& queue_h =
      obs::MetricsRegistry::Global().GetHistogram("kdsel.net.stage.queue");
  static obs::Histogram& batch_wait_h =
      obs::MetricsRegistry::Global().GetHistogram("kdsel.net.stage.batch_wait");
  static obs::Histogram& compute_h =
      obs::MetricsRegistry::Global().GetHistogram("kdsel.net.stage.compute");
  static obs::Histogram& write_h =
      obs::MetricsRegistry::Global().GetHistogram("kdsel.net.stage.write");
  static obs::Histogram& e2e_h =
      obs::MetricsRegistry::Global().GetHistogram("kdsel.net.e2e");

  obs::FlightRecord record;
  std::memcpy(record.trace, meta.trace, sizeof(record.trace));
  record.verdict = meta.verdict;
  record.int8_variant = meta.int8_variant;
  record.total_us =
      static_cast<double>(std::max<int64_t>(flushed_us - meta.ingress_us, 0));
  if (meta.verdict == obs::FlightRecord::Verdict::kOk) {
    record.queue_us = meta.queue_us;
    record.batch_wait_us = meta.batch_wait_us;
    record.compute_us = meta.compute_us;
    // Response ready (worker stamp) -> reply handed to the send loop.
    record.write_us = meta.done_us > 0
                          ? static_cast<double>(std::max<int64_t>(
                                flushed_us - meta.done_us, 0))
                          : 0.0;
    // Stage histograms only see served requests: a refusal's zeros
    // would drag every stage p50 toward the shed rate instead of
    // describing the pipeline.
    queue_h.Record(record.queue_us);
    batch_wait_h.Record(record.batch_wait_us);
    compute_h.Record(record.compute_us);
    write_h.Record(record.write_us);
    e2e_h.Record(record.total_us);
  }
  flight_.Record(record);
}

std::string NetServer::ShedderJson() const {
  auto format_us = [](double us) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", us);
    return std::string(buf);
  };
  std::string out = "{\"enabled\":";
  out += options_.slo_ms > 0.0 ? "true" : "false";
  out += ",\"state\":\"";
  out += shedder_.shedding() ? "shed" : "admit";
  out += "\",\"slo_us\":" + format_us(shedder_.options().slo_us);
  out += ",\"window_p99_us\":" + format_us(shedder_.window_p99());
  out += ",\"transitions\":" + std::to_string(shedder_.transitions());
  out += ",\"shed\":" + std::to_string(shedder_.shed_count());
  out += ",\"evaluations\":" + std::to_string(shedder_.evaluations());
  out += '}';
  return out;
}

void NetServer::ShardLoop(Shard& shard) {
  constexpr size_t kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  std::vector<serve::InferenceServer::AsyncItem> submits;
  bool draining = false;
  int64_t drain_deadline_us = 0;

  for (;;) {
    const int timeout_ms = draining ? 50 : -1;
    const int n = epoll_wait(shard.epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd broken; nothing sane left to do.
    }
    const int64_t now_us = NowUs();

    bool completions = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == shard.wake_fd) {
        completions = true;  // Drained once, below, after socket work.
        continue;
      }
      if (fd == shard.listen_fd) {
        AcceptReady(shard);
        continue;
      }
      auto it = shard.conns.find(fd);
      if (it == shard.conns.end()) continue;
      Conn& conn = *it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // Half-close (EPOLLHUP with pending replies) still flushes;
        // hard errors surface through read()/send() below.
        conn.stop_reading = true;
      }
      if (events[i].events & EPOLLIN) {
        ReadReady(shard, conn, now_us, submits);
      }
      FlushConn(shard, conn);  // May close and erase `conn`.
    }

    if (completions) {
      DrainCompletions(shard);
      // Ready slots may now head several queues; flush every conn with
      // no pending front rather than tracking touched fds.
      for (auto it = shard.conns.begin(); it != shard.conns.end();) {
        Conn& conn = *it->second;
        ++it;  // FlushConn may erase the current entry.
        FlushConn(shard, conn);
      }
    }

    if (!submits.empty()) {
      server_->SubmitBatch(std::move(submits));
      submits.clear();
    }

    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline_us = now_us + kStopFlushBudgetUs;
      epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, shard.listen_fd, nullptr);
      close(shard.listen_fd);
      shard.listen_fd = -1;
      for (auto it = shard.conns.begin(); it != shard.conns.end();) {
        Conn& conn = *it->second;
        ++it;
        conn.stop_reading = true;
        FlushConn(shard, conn);  // Closes idle conns outright.
      }
    }

    if (draining) {
      if (NowUs() > drain_deadline_us) {
        // Peers refusing to read their replies do not hold shutdown
        // hostage; whatever remains unwritten is dropped.
        while (!shard.conns.empty()) {
          CloseConn(shard, *shard.conns.begin()->second);
        }
      }
      if (shard.conns.empty() &&
          shard.outstanding.load(std::memory_order_relaxed) == 0) {
        // Late completions for force-closed conns were already drained;
        // with outstanding at zero no callback will touch wake_fd again,
        // so Stop() can close it safely after join.
        break;
      }
    }
  }
}

}  // namespace kdsel::net
