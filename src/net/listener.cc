#include "net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/stringutil.h"

namespace kdsel::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<HostPort> ParseHostPort(const std::string& address) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("listen address needs host:port, got '" +
                                   address + "'");
  }
  HostPort out;
  out.host = address.substr(0, colon);
  KDSEL_ASSIGN_OR_RETURN(const uint64_t port,
                         ParseUint64(address.substr(colon + 1)));
  if (port > 65535) {
    return Status::InvalidArgument("port out of range in '" + address + "'");
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

StatusOr<int> OpenReusePortListener(const HostPort& address, int backlog) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  if (address.host.empty() || address.host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + address.host +
                                   "'");
  }

  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    Status status = Errno("setsockopt(SO_REUSEADDR|SO_REUSEPORT)");
    close(fd);
    return status;
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind " + address.host + ":" +
                          std::to_string(address.port));
    close(fd);
    return status;
  }
  if (listen(fd, backlog) != 0) {
    Status status = Errno("listen");
    close(fd);
    return status;
  }
  return fd;
}

StatusOr<int> ConnectTcp(const HostPort& address) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  const std::string host = address.host.empty() ? "127.0.0.1" : address.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Errno("connect " + host + ":" +
                          std::to_string(address.port));
    close(fd);
    return status;
  }
  KDSEL_RETURN_NOT_OK(SetNoDelay(fd));
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

}  // namespace kdsel::net
