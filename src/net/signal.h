#ifndef KDSEL_NET_SIGNAL_H_
#define KDSEL_NET_SIGNAL_H_

#include "common/status.h"

namespace kdsel::net {

/// Installs SIGINT/SIGTERM handlers for graceful shutdown. The handler
/// is async-signal-safe: it sets a flag and writes one byte to an
/// internal eventfd so event loops blocked in epoll_wait (or a caller
/// blocked in WaitForShutdownSignal) wake immediately.
///
/// Handlers are installed WITHOUT SA_RESTART, so the stdin NDJSON loops
/// (`kdsel serve`/`kdsel stream` in pipe mode) pop out of their blocking
/// getline with EOF, drain in-flight requests and print final stats
/// instead of dying mid-write. Call once; subsequent calls are no-ops.
Status InstallShutdownHandlers();

/// True once SIGINT or SIGTERM has been delivered.
bool ShutdownRequested();

/// The eventfd the handler signals; poll it (POLLIN) to wake on
/// shutdown. Owned by the process; never close it. Returns -1 before
/// InstallShutdownHandlers().
int ShutdownEventFd();

/// Blocks until SIGINT/SIGTERM arrives (returns immediately if one
/// already did).
void WaitForShutdownSignal();

/// Test hook: pretends a signal arrived (same code path as the real
/// handler, minus the kernel).
void RequestShutdownForTesting();

}  // namespace kdsel::net

#endif  // KDSEL_NET_SIGNAL_H_
