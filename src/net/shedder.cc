#include "net/shedder.h"

namespace kdsel::net {

Shedder::Shedder(ShedderOptions options) : options_(options) {}

KDSEL_HOT void Shedder::RecordLatency(double us) { window_.Record(us); }

KDSEL_HOT bool Shedder::Admit(int64_t now_us) {
  if (options_.slo_us <= 0.0) return true;
  if (now_us >= next_eval_us_.load(std::memory_order_relaxed)) {
    Evaluate(now_us);
  }
  if (shedding_.load(std::memory_order_relaxed)) {
    shed_count_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Shedder::Evaluate(int64_t now_us) {
  // One evaluator per interval; concurrent shards skip and use the
  // current state rather than queueing on the lock.
  std::unique_lock<std::mutex> lock(eval_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (now_us < next_eval_us_.load(std::memory_order_relaxed)) return;

  const obs::Histogram::Summary window = window_.Summarize();
  const bool shedding = shedding_.load(std::memory_order_relaxed);
  if (!shedding) {
    if (window.samples >= options_.min_samples &&
        window.p99 > options_.slo_us) {
      shedding_.store(true, std::memory_order_relaxed);
    }
  } else {
    // While shedding, the window only sees the draining backlog. Recover
    // when the drain's p99 clears the exit threshold -- or when nothing
    // completed at all this window (backlog empty: no evidence left).
    if (window.samples == 0 ||
        window.p99 < options_.exit_fraction * options_.slo_us) {
      shedding_.store(false, std::memory_order_relaxed);
    }
  }
  window_.Reset();
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  next_eval_us_.store(now_us + options_.eval_interval_us,
                      std::memory_order_relaxed);
}

}  // namespace kdsel::net
