#include "net/shedder.h"

namespace kdsel::net {

Shedder::Shedder(ShedderOptions options)
    : options_(options),
      state_gauge_(
          obs::MetricsRegistry::Global().GetGauge("kdsel.net.shed_state")),
      window_p99_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "kdsel.net.shed_window_p99_us")),
      transitions_counter_(obs::MetricsRegistry::Global().GetCounter(
          "kdsel.net.shed_transitions")),
      shed_counter_(
          obs::MetricsRegistry::Global().GetCounter("kdsel.net.shed_requests")) {
}

KDSEL_HOT void Shedder::RecordLatency(double us) { window_.Record(us); }

KDSEL_HOT bool Shedder::Admit(int64_t now_us) {
  if (options_.slo_us <= 0.0) return true;
  if (now_us >= next_eval_us_.load(std::memory_order_relaxed)) {
    Evaluate(now_us);
  }
  if (shedding_.load(std::memory_order_relaxed)) {
    shed_count_.fetch_add(1, std::memory_order_relaxed);
    shed_counter_.Increment();
    return false;
  }
  return true;
}

void Shedder::Evaluate(int64_t now_us) {
  // One evaluator per interval; concurrent shards skip and use the
  // current state rather than queueing on the lock.
  std::unique_lock<std::mutex> lock(eval_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (now_us < next_eval_us_.load(std::memory_order_relaxed)) return;

  // Two snapshots of the same window; a RecordLatency() racing between
  // them skews the pair by at most one sample, which cannot matter at
  // min_samples granularity.
  const uint64_t samples = window_.SampleCount();
  const double p99 = window_.Percentile(0.99);
  const bool was_shedding = shedding_.load(std::memory_order_relaxed);
  bool now_shedding = was_shedding;
  if (!was_shedding) {
    if (samples >= options_.min_samples && p99 > options_.slo_us) {
      now_shedding = true;
    }
  } else {
    // While shedding, the window only sees the draining backlog. Recover
    // when the drain's p99 clears the exit threshold -- or when nothing
    // completed at all this window (backlog empty: no evidence left).
    if (samples == 0 || p99 < options_.exit_fraction * options_.slo_us) {
      now_shedding = false;
    }
  }
  if (now_shedding != was_shedding) {
    shedding_.store(now_shedding, std::memory_order_relaxed);
    transitions_.fetch_add(1, std::memory_order_relaxed);
    transitions_counter_.Increment();
  }
  window_p99_.store(p99, std::memory_order_relaxed);
  window_p99_gauge_.Set(p99);
  state_gauge_.Set(now_shedding ? 1.0 : 0.0);
  window_.Reset();
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  next_eval_us_.store(now_us + options_.eval_interval_us,
                      std::memory_order_relaxed);
}

}  // namespace kdsel::net
