#ifndef KDSEL_NET_SHEDDER_H_
#define KDSEL_NET_SHEDDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/annotations.h"
#include "obs/metrics.h"

namespace kdsel::net {

/// Tuning for SLO-aware admission control.
struct ShedderOptions {
  /// p99 latency target in microseconds for accepted requests; <= 0
  /// disables shedding entirely (every request is admitted).
  double slo_us = 0.0;
  /// Hysteresis: once shedding, recover only when the windowed p99 falls
  /// below exit_fraction * slo_us. Between the two thresholds the
  /// current state holds, so the shedder cannot flap on a p99 that
  /// hovers at the boundary.
  double exit_fraction = 0.7;
  /// Evaluate the latency window at most once per this interval.
  int64_t eval_interval_us = 20000;
  /// A window needs at least this many samples before its p99 can
  /// trigger shedding (a handful of cold-start outliers must not shed).
  uint64_t min_samples = 32;
};

/// SLO-aware load shedder with hysteresis.
///
/// Accepted requests record their server-side total latency into a
/// windowed obs `LatencyHistogram`; Admit() periodically summarizes the
/// window, compares its p99 against the SLO target, and flips between
/// ADMIT and SHED:
///
///   ADMIT -> SHED  when windowed p99 > slo_us (with >= min_samples)
///   SHED  -> ADMIT when windowed p99 < exit_fraction * slo_us, or the
///                  window is empty (the backlog fully drained -- with
///                  admission off, an empty window means there is no
///                  latency evidence left to justify shedding)
///
/// The window resets after every evaluation, so decisions track the
/// last eval interval rather than the whole process history (a p99 over
/// all time would never recover after one overload episode).
///
/// All methods are thread-safe; Admit() and RecordLatency() are
/// wait-free except for the one caller per interval that wins the
/// evaluation try_lock. Time is injected (`now_us`, monotonic
/// microseconds, e.g. obs::NowNs()/1000) so tests can drive the state
/// machine with a fake clock.
///
/// Decisions are published to the global metrics registry so operators
/// can watch admission control without a debugger:
///   kdsel.net.shed_state          gauge, 0 = admitting / 1 = shedding
///   kdsel.net.shed_window_p99_us  gauge, p99 of the last evaluated window
///   kdsel.net.shed_transitions    counter, ADMIT<->SHED state flips
///   kdsel.net.shed_requests       counter, requests refused by Admit()
class Shedder {
 public:
  explicit Shedder(ShedderOptions options);

  /// Records the server-side total latency (microseconds) of one
  /// completed, previously admitted request.
  void RecordLatency(double us);

  /// Admission decision for one new request at monotonic time `now_us`.
  /// Returns false (and counts the request as shed) while shedding.
  bool Admit(int64_t now_us);

  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }
  uint64_t shed_count() const {
    return shed_count_.load(std::memory_order_relaxed);
  }
  /// Number of window evaluations performed (for tests/introspection).
  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// ADMIT<->SHED flips since construction.
  uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  /// p99 of the most recently evaluated window in microseconds (0
  /// before the first evaluation).
  double window_p99() const {
    return window_p99_.load(std::memory_order_relaxed);
  }
  const ShedderOptions& options() const { return options_; }

 private:
  void Evaluate(int64_t now_us);

  ShedderOptions options_;
  obs::Histogram window_;
  std::atomic<bool> shedding_{false};
  std::atomic<uint64_t> shed_count_{0};
  std::atomic<uint64_t> evaluations_{0};
  std::atomic<uint64_t> transitions_{0};
  std::atomic<double> window_p99_{0.0};
  std::atomic<int64_t> next_eval_us_{0};
  std::mutex eval_mu_;  ///< At most one thread evaluates a window.

  // Registry handles bound once at construction (stable addresses for
  // the process lifetime), so the hot path pays one atomic per event
  // and never touches the registry lock.
  obs::Gauge& state_gauge_;
  obs::Gauge& window_p99_gauge_;
  obs::Counter& transitions_counter_;
  obs::Counter& shed_counter_;
};

}  // namespace kdsel::net

#endif  // KDSEL_NET_SHEDDER_H_
