#ifndef KDSEL_NET_LISTENER_H_
#define KDSEL_NET_LISTENER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace kdsel::net {

/// A parsed "host:port" listen address. Host may be empty (wildcard).
struct HostPort {
  std::string host;
  uint16_t port = 0;
};

/// Parses "127.0.0.1:7070", "0.0.0.0:0" or ":7070" (wildcard host).
/// IPv4 only; the serving layer is loopback/LAN-facing.
StatusOr<HostPort> ParseHostPort(const std::string& address);

/// Opens a non-blocking IPv4 TCP listening socket bound with
/// SO_REUSEADDR + SO_REUSEPORT. Every shard opens its own socket on the
/// same address, so the kernel load-balances accepts across shards
/// instead of every shard contending on one accept queue.
StatusOr<int> OpenReusePortListener(const HostPort& address, int backlog);

/// The port a socket is actually bound to (resolves port 0 requests).
StatusOr<uint16_t> LocalPort(int fd);

/// Opens a blocking IPv4 TCP connection with TCP_NODELAY set — the
/// client-side counterpart of OpenReusePortListener, used by the bench
/// driver and tests so socket(2) stays confined to src/net/.
StatusOr<int> ConnectTcp(const HostPort& address);

/// Marks any fd non-blocking (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm on a connected TCP socket; NDJSON
/// request/response traffic is latency-bound, not bandwidth-bound.
Status SetNoDelay(int fd);

}  // namespace kdsel::net

#endif  // KDSEL_NET_LISTENER_H_
