// Streaming subsystem tests: ring-buffer mechanics, incremental-vs-batch
// feature parity over long streams, drift triggering, deterministic
// multiplexed scoring at different thread counts, steady-state
// allocation behavior of the ingest path (train_alloc_test style), and
// registry hot reload during active streaming.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/families.h"
#include "features/features.h"
#include "serve/registry.h"
#include "stream/drift.h"
#include "stream/incremental_features.h"
#include "stream/protocol.h"
#include "stream/scorer.h"
#include "stream/stream_buffer.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// The replacement operators must allocate with malloc/free directly.
// GCC flags the malloc/free pairing at inlined call sites even though
// replacing the global operators this way is well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;  // kdsel-lint: allow(naked-new)
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;  // kdsel-lint: allow(naked-new)
  throw std::bad_alloc();
}

// kdsel-lint: allow(naked-new)
void operator delete(void* p) noexcept { std::free(p); }
// kdsel-lint: allow(naked-new)
void operator delete[](void* p) noexcept { std::free(p); }
// kdsel-lint: allow(naked-new)
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
// kdsel-lint: allow(naked-new)
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace kdsel::stream {
namespace {

std::unique_ptr<core::TrainedSelector> TrainTinySelector(
    size_t num_classes = 3, uint64_t seed = 1) {
  core::SelectorTrainingData data;
  data.num_classes = num_classes;
  Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    const int c = i % static_cast<int>(num_classes);
    std::vector<float> w(16);
    for (size_t t = 0; t < 16; ++t) {
      w[t] = std::sin((0.3 + 0.9 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = seed;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

TEST(StreamBufferTest, WrapAroundKeepsLogicalOrder) {
  StreamBuffer buffer(4);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.full());
  for (int i = 0; i < 3; ++i) buffer.Push(static_cast<float>(i));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_FLOAT_EQ(buffer.front(), 0.0f);
  EXPECT_FLOAT_EQ(buffer.back(), 2.0f);

  for (int i = 3; i < 11; ++i) buffer.Push(static_cast<float>(i));
  EXPECT_TRUE(buffer.full());
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total(), 11u);
  // Window holds the last 4 pushes, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(buffer[i], static_cast<float>(7 + i));
  }
  float copied[4];
  buffer.CopyTo(copied);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(copied[i], static_cast<float>(7 + i));
  }
}

// Feature-parity harness: stream `points` through IncrementalFeatures
// and at checkpoints compare the full vector against the batch extractor
// on the identical window.
void ExpectStreamMatchesBatch(const std::vector<float>& points, size_t window,
                              const std::string& context) {
  IncrementalOptions options;
  options.window = window;
  IncrementalFeatures incremental(options);
  std::vector<float> streamed(features::FeatureCount());
  const size_t checkpoint = 9973;  // prime: checkpoints drift over phases

  for (size_t i = 0; i < points.size(); ++i) {
    incremental.Push(points[i]);
    const bool last = i + 1 == points.size();
    if (!incremental.ready()) continue;
    if ((i + 1) % checkpoint != 0 && !last) continue;

    incremental.Features(streamed.data());
    const size_t n = incremental.buffer().size();
    std::vector<float> window_copy(n);
    incremental.buffer().CopyTo(window_copy.data());
    const std::vector<float> batch = features::ExtractFeatures(window_copy);
    ASSERT_EQ(streamed.size(), batch.size());
    for (size_t j = 0; j < batch.size(); ++j) {
      // Relative 1e-5: float quantization alone exceeds absolute 1e-5
      // for large-magnitude features (abs_energy of a level-10 signal).
      const double tolerance =
          1e-5 * std::max(1.0, std::abs(static_cast<double>(batch[j])));
      EXPECT_NEAR(streamed[j], batch[j], tolerance)
          << context << ": feature " << features::FeatureNames()[j]
          << " at point " << i + 1;
    }
  }
  if (points.size() >= 2 * window) {
    EXPECT_GE(incremental.recomputes(), points.size() / window - 1)
        << context << ": periodic exact recompute did not run";
  }
}

TEST(IncrementalParityTest, MatchesBatchOver100kPointsAllFamilies) {
  for (datagen::Family family : datagen::AllFamilies()) {
    Rng rng(42);
    const std::vector<float> points =
        datagen::GenerateBaseSignal(family, 100000, rng);
    ASSERT_EQ(points.size(), 100000u);
    ExpectStreamMatchesBatch(points, 256, datagen::FamilyName(family));
  }
}

TEST(IncrementalParityTest, ConstantAndDegenerateStreams) {
  // Constant stream: every variance-normalized slot is exactly 0 on both
  // paths (the degenerate-window contract).
  std::vector<float> constant(40000, 3.25f);
  ExpectStreamMatchesBatch(constant, 128, "constant");

  // Large offset with tiny wobble: stays finite and matches.
  Rng rng(7);
  std::vector<float> wobble(40000);
  for (float& v : wobble) {
    v = 50000.0f + static_cast<float>(rng.Normal(0.0, 1e-3));
  }
  ExpectStreamMatchesBatch(wobble, 128, "wobble");
}

TEST(IncrementalParityTest, ShortWindowPartialFill) {
  // Parity must hold before the ring ever fills or wraps.
  Rng rng(3);
  std::vector<float> points(100);
  for (float& v : points) v = static_cast<float>(rng.Normal(2.0, 1.5));
  ExpectStreamMatchesBatch(points, 256, "partial-fill");
}

// Drift harness: stream points, observing moments every `interval`
// pushes; returns the first point index at which the monitor fired, or 0.
uint64_t FirstDriftPoint(const std::vector<float>& points,
                         const DriftOptions& options, size_t interval = 16) {
  IncrementalOptions inc_options;
  inc_options.window = 256;
  IncrementalFeatures incremental(inc_options);
  DriftMonitor monitor(options);
  for (size_t i = 0; i < points.size(); ++i) {
    incremental.Push(points[i]);
    if ((i + 1) % interval != 0 || incremental.buffer().size() < 2) continue;
    if (monitor.Observe(incremental.Moments())) return i + 1;
  }
  return 0;
}

TEST(DriftMonitorTest, SilentOnStationaryStreams) {
  const DriftOptions options;
  Rng rng(5);

  std::vector<float> sine(60000);
  for (size_t i = 0; i < sine.size(); ++i) {
    sine[i] = static_cast<float>(4.0 + std::sin(0.21 * i) +
                                 0.15 * rng.Normal());
  }
  EXPECT_EQ(FirstDriftPoint(sine, options), 0u) << "sine+noise fired";

  std::vector<float> ar(60000);
  double state = 0.0;
  for (float& v : ar) {
    state = 0.8 * state + rng.Normal(0.0, 0.5);
    v = static_cast<float>(state);
  }
  EXPECT_EQ(FirstDriftPoint(ar, options), 0u) << "AR(1) fired";

  std::vector<float> white(60000);
  for (float& v : white) v = static_cast<float>(rng.Normal(0.0, 2.0));
  EXPECT_EQ(FirstDriftPoint(white, options), 0u) << "white noise fired";
}

TEST(DriftMonitorTest, FiresOnInjectedRegimeSwitch) {
  const DriftOptions options;
  Rng rng(6);
  const size_t kSwitch = 20000;

  // Smooth sine regime, then an abrupt square-wave regime at a different
  // level — the kind of family switch the streaming CLI must react to.
  std::vector<float> points(40000);
  for (size_t i = 0; i < points.size(); ++i) {
    if (i < kSwitch) {
      points[i] = static_cast<float>(2.0 + std::sin(0.2 * i) +
                                     0.1 * rng.Normal());
    } else {
      points[i] = static_cast<float>(
          8.0 + ((i / 25) % 2 == 0 ? 3.0 : -3.0) + 0.1 * rng.Normal());
    }
  }
  const uint64_t fired = FirstDriftPoint(points, options);
  EXPECT_GT(fired, kSwitch) << "fired before the switch (or not at all)";
  EXPECT_LE(fired, kSwitch + 4000) << "fired too long after the switch";

  // Subtler switch: same level, changed autocorrelation structure.
  Rng rng2(8);
  std::vector<float> subtle(40000);
  for (size_t i = 0; i < subtle.size(); ++i) {
    if (i < kSwitch) {
      subtle[i] = static_cast<float>(std::sin(0.1 * i) + 0.05 * rng2.Normal());
    } else {
      subtle[i] = static_cast<float>(rng2.Normal(0.0, 0.8));
    }
  }
  const uint64_t fired2 = FirstDriftPoint(subtle, options);
  EXPECT_GT(fired2, kSwitch);
  EXPECT_LE(fired2, kSwitch + 4000);
}

TEST(DriftMonitorTest, RebaseRecalibratesOnNewRegime) {
  DriftMonitor monitor(DriftOptions{});
  MomentSummary calm;
  calm.mean = 1.0;
  calm.stddev = 0.5;
  for (size_t i = 0; i < 64; ++i) EXPECT_FALSE(monitor.Observe(calm));
  EXPECT_TRUE(monitor.calibrated());

  MomentSummary shifted = calm;
  shifted.mean = 50.0;
  bool fired = false;
  for (size_t i = 0; i < 8 && !fired; ++i) fired = monitor.Observe(shifted);
  EXPECT_TRUE(fired);

  // After Rebase the shifted regime becomes the new baseline.
  monitor.Rebase();
  for (size_t i = 0; i < 64; ++i) EXPECT_FALSE(monitor.Observe(shifted));
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(monitor.Observe(shifted)) << "fired on its own baseline";
  }
}

std::vector<PointEvent> MakeStreamBatch(const std::vector<std::string>& names,
                                        size_t points_per_series,
                                        size_t offset) {
  std::vector<PointEvent> batch;
  for (size_t p = 0; p < points_per_series; ++p) {
    for (size_t s = 0; s < names.size(); ++s) {
      const size_t t = offset + p;
      const double phase = 0.25 + 0.4 * static_cast<double>(s);
      batch.push_back(PointEvent{
          names[s], static_cast<float>(std::sin(phase * t))});
    }
  }
  return batch;
}

StreamOptions TinyStreamOptions() {
  StreamOptions options;
  options.selector = "tiny";
  options.window = 64;
  options.rescore_interval = 64;
  options.drift_check_interval = 8;
  options.drift.calibration = 16;
  options.drift.patience = 2;
  return options;
}

TEST(StreamScorerTest, EmitsInitialThenPeriodicSelections) {
  serve::SelectorRegistry registry(
      core::SelectorManager("/tmp/kdsel_stream_none"));
  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());
  StreamScorer scorer(&registry, TinyStreamOptions());

  const std::vector<std::string> names = {"alpha", "beta"};
  auto first = scorer.ProcessBatch(MakeStreamBatch(names, 64, 0));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->size(), 2u);
  for (const StreamEvent& event : *first) {
    EXPECT_EQ(event.kind, StreamEvent::Kind::kSelection);
    EXPECT_EQ(event.reason, "initial");
    EXPECT_FALSE(event.changed);
    EXPECT_GE(event.model, 0);
    EXPECT_EQ(event.point, 64u);
  }
  EXPECT_EQ((*first)[0].series, "alpha");
  EXPECT_EQ((*first)[1].series, "beta");

  auto second = scorer.ProcessBatch(MakeStreamBatch(names, 64, 64));
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(second->size(), 2u);
  for (const StreamEvent& event : *second) {
    EXPECT_EQ(event.reason, "periodic");
    EXPECT_EQ(event.point, 128u);
  }
  EXPECT_EQ(scorer.series_count(), 2u);
  EXPECT_EQ(scorer.points_ingested(), 256u);
}

TEST(StreamScorerTest, DriftTriggersReselection) {
  serve::SelectorRegistry registry(
      core::SelectorManager("/tmp/kdsel_stream_none"));
  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());
  StreamOptions options = TinyStreamOptions();
  options.rescore_interval = 100000;  // periodic path effectively off
  StreamScorer scorer(&registry, options);

  Rng rng(9);
  std::vector<PointEvent> calm;
  for (size_t t = 0; t < 2000; ++t) {
    calm.push_back(PointEvent{
        "s", static_cast<float>(std::sin(0.3 * t) + 0.05 * rng.Normal())});
  }
  auto first = scorer.ProcessBatch(calm);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->size(), 1u);  // initial selection only, no drift
  EXPECT_EQ((*first)[0].reason, "initial");

  std::vector<PointEvent> shifted;
  for (size_t t = 0; t < 2000; ++t) {
    shifted.push_back(PointEvent{
        "s", static_cast<float>(20.0 + 4.0 * ((t / 20) % 2) +
                                0.05 * rng.Normal())});
  }
  auto second = scorer.ProcessBatch(shifted);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_GE(second->size(), 2u);
  EXPECT_EQ((*second)[0].kind, StreamEvent::Kind::kDrift);
  EXPECT_GT((*second)[0].statistic, 0.0);
  bool saw_drift_selection = false;
  for (const StreamEvent& event : *second) {
    if (event.kind == StreamEvent::Kind::kSelection) {
      EXPECT_EQ(event.reason, "drift");
      saw_drift_selection = true;
    }
  }
  EXPECT_TRUE(saw_drift_selection);
}

// Serializes every emitted event so runs can be compared exactly.
std::string RunScenario(size_t threads) {
  ThreadPool::ResetGlobalForTesting(threads);
  serve::SelectorRegistry registry(
      core::SelectorManager("/tmp/kdsel_stream_none"));
  KDSEL_CHECK(registry.Register("tiny", TrainTinySelector()).ok());
  StreamOptions options = TinyStreamOptions();
  options.rescore_grain = 2;
  StreamScorer scorer(&registry, options);

  std::vector<std::string> names;
  for (int s = 0; s < 9; ++s) names.push_back("series_" + std::to_string(s));

  std::string log;
  for (size_t round = 0; round < 6; ++round) {
    auto events = scorer.ProcessBatch(MakeStreamBatch(names, 40, round * 40));
    KDSEL_CHECK(events.ok());
    for (const StreamEvent& event : *events) {
      log += FormatStreamEvent(event);
      log.push_back('\n');
    }
  }
  return log;
}

TEST(StreamScorerTest, DeterministicAcrossThreadCounts) {
  const std::string single = RunScenario(1);
  const std::string pooled = RunScenario(8);
  ThreadPool::ResetGlobalForTesting(0);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, pooled);
}

TEST(StreamScorerTest, HotReloadDuringActiveStreaming) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_stream_reload")
          .string();
  std::filesystem::remove_all(dir);
  core::SelectorManager manager(dir);
  ASSERT_TRUE(manager.Save(*TrainTinySelector(), "hot").ok());

  serve::SelectorRegistry registry{core::SelectorManager(dir)};
  ASSERT_TRUE(registry.GetOrLoad("hot").ok());
  StreamOptions options = TinyStreamOptions();
  options.selector = "hot";
  options.rescore_interval = 16;  // re-score often to hit fresh snapshots
  StreamScorer scorer(&registry, options);

  // Raw thread on purpose: the reloader is an external actor outside the
  // shared pool, hot-swapping snapshots while batches are in flight.
  std::atomic<bool> stop{false};
  std::thread reloader([&] {  // kdsel-lint: allow(raw-thread)
    while (!stop.load(std::memory_order_relaxed)) {
      KDSEL_CHECK(registry.ReloadAll().ok());
    }
  });

  const std::vector<std::string> names = {"r0", "r1", "r2", "r3"};
  uint64_t selections = 0;
  uint64_t max_version = 0;
  for (size_t round = 0; round < 40; ++round) {
    auto events = scorer.ProcessBatch(MakeStreamBatch(names, 16, round * 16));
    ASSERT_TRUE(events.ok()) << events.status();
    for (const StreamEvent& event : *events) {
      if (event.kind != StreamEvent::Kind::kSelection) continue;
      ++selections;
      max_version = std::max(max_version, event.selector_version);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  reloader.join();

  EXPECT_GT(selections, 0u);
  // The reloader really did swap versions under our feet.
  EXPECT_GT(max_version, 1u);
  std::filesystem::remove_all(dir);
}

TEST(StreamProtocolTest, ParsesPointsBurstsAndControls) {
  auto point = ParseStreamLine("{\"series\":\"s1\",\"value\":0.5}");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->op, StreamRequest::Op::kPoints);
  EXPECT_EQ(point->series, "s1");
  ASSERT_EQ(point->values.size(), 1u);
  EXPECT_FLOAT_EQ(point->values[0], 0.5f);

  auto burst = ParseStreamLine("{\"series\":\"s2\",\"values\":[1,2,3]}");
  ASSERT_TRUE(burst.ok());
  EXPECT_EQ(burst->values.size(), 3u);

  // "op":"points" is the explicit alias for the implicit point form.
  auto explicit_points =
      ParseStreamLine("{\"op\":\"points\",\"series\":\"s3\",\"values\":[4]}");
  ASSERT_TRUE(explicit_points.ok());
  EXPECT_EQ(explicit_points->op, StreamRequest::Op::kPoints);
  EXPECT_EQ(explicit_points->series, "s3");

  auto quit = ParseStreamLine("{\"op\":\"quit\"}");
  ASSERT_TRUE(quit.ok());
  EXPECT_EQ(quit->op, StreamRequest::Op::kQuit);

  EXPECT_FALSE(ParseStreamLine("not json").ok());
  EXPECT_FALSE(ParseStreamLine("{\"value\":1}").ok());
  EXPECT_FALSE(ParseStreamLine("{\"series\":\"s\"}").ok());
  EXPECT_FALSE(ParseStreamLine("{\"series\":\"s\",\"values\":[]}").ok());
  EXPECT_FALSE(ParseStreamLine("{\"op\":\"explode\"}").ok());
}

TEST(StreamProtocolTest, EndToEndLoopEmitsSelectionAndStats) {
  serve::SelectorRegistry registry(
      core::SelectorManager("/tmp/kdsel_stream_none"));
  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());
  StreamScorer scorer(&registry, TinyStreamOptions());

  std::ostringstream input_text;
  for (size_t t = 0; t < 96; ++t) {
    input_text << "{\"series\":\"s1\",\"value\":"
               << std::sin(0.3 * static_cast<double>(t)) << "}\n";
  }
  input_text << "this is not json\n";
  input_text << "{\"op\":\"stats\"}\n";
  input_text << "{\"op\":\"quit\"}\n";

  std::istringstream in(input_text.str());
  std::ostringstream out;
  const Status status = RunStreamLoop(in, out, scorer, registry);
  ASSERT_TRUE(status.ok()) << status;

  const std::string output = out.str();
  EXPECT_NE(output.find("\"event\":\"selection\""), std::string::npos);
  EXPECT_NE(output.find("\"reason\":\"initial\""), std::string::npos);
  EXPECT_NE(output.find("\"event\":\"error\""), std::string::npos);
  EXPECT_NE(output.find("\"event\":\"stats\""), std::string::npos);
  EXPECT_NE(output.find("kdsel.stream.points"), std::string::npos);
  EXPECT_EQ(scorer.points_ingested(), 96u);
}

TEST(StreamAllocTest, SteadyStateIngestAllocatesNothing) {
  IncrementalOptions inc_options;
  inc_options.window = 256;
  IncrementalFeatures incremental(inc_options);
  DriftMonitor monitor(DriftOptions{});
  std::vector<float> feature_buffer(features::FeatureCount());

  // One synthetic ingest step: push + drift check cadence + the full
  // feature extraction at the re-score cadence.
  Rng rng(12);
  uint64_t t = 0;
  auto step = [&] {
    incremental.Push(
        static_cast<float>(std::sin(0.21 * static_cast<double>(t)) +
                           0.1 * rng.Normal()));
    ++t;
    if (t % 16 == 0) monitor.Observe(incremental.Moments());
    if (t % 128 == 0) incremental.Features(feature_buffer.data());
  };

  // Warmup: fill the ring, cross several exact recomputes, and run the
  // extraction once so every scratch vector reaches steady capacity.
  for (size_t i = 0; i < 1024; ++i) step();

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (size_t i = 0; i < 10000; ++i) step();
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state ingest path allocated " << after - before << " times";
  EXPECT_GE(incremental.recomputes(), 40u);
}

}  // namespace
}  // namespace kdsel::stream
