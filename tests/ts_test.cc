#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "ts/dataset.h"
#include "ts/time_series.h"
#include "ts/window.h"

namespace kdsel::ts {
namespace {

TimeSeries MakeSeries(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i % 10);
  return TimeSeries("test", std::move(v));
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries s = MakeSeries(100);
  EXPECT_EQ(s.length(), 100u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.name(), "test");
  EXPECT_FALSE(s.has_labels());
}

TEST(TimeSeriesTest, SetLabelsRejectsWrongLength) {
  TimeSeries s = MakeSeries(10);
  EXPECT_FALSE(s.SetLabels(std::vector<uint8_t>(5, 0)).ok());
  EXPECT_TRUE(s.SetLabels(std::vector<uint8_t>(10, 0)).ok());
}

TEST(TimeSeriesTest, MarkAnomalyAndRegions) {
  TimeSeries s = MakeSeries(50);
  ASSERT_TRUE(s.MarkAnomaly(5, 10).ok());
  ASSERT_TRUE(s.MarkAnomaly(20, 21).ok());
  auto regions = s.AnomalyRegions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].begin, 5u);
  EXPECT_EQ(regions[0].end, 10u);
  EXPECT_EQ(regions[0].length(), 5u);
  EXPECT_EQ(regions[1].begin, 20u);
  EXPECT_EQ(regions[1].end, 21u);
  EXPECT_EQ(s.NumAnomalies(), 2u);
}

TEST(TimeSeriesTest, AdjacentRegionsMerge) {
  TimeSeries s = MakeSeries(30);
  ASSERT_TRUE(s.MarkAnomaly(5, 8).ok());
  ASSERT_TRUE(s.MarkAnomaly(8, 12).ok());
  EXPECT_EQ(s.AnomalyRegions().size(), 1u);
}

TEST(TimeSeriesTest, MarkAnomalyOutOfRange) {
  TimeSeries s = MakeSeries(10);
  EXPECT_FALSE(s.MarkAnomaly(5, 20).ok());
  EXPECT_FALSE(s.MarkAnomaly(8, 5).ok());
}

TEST(TimeSeriesTest, Metadata) {
  TimeSeries s = MakeSeries(10);
  s.SetMeta("dataset", "ECG");
  EXPECT_EQ(s.GetMeta("dataset"), "ECG");
  EXPECT_EQ(s.GetMeta("missing"), "");
}

TEST(TimeSeriesTest, MeanAndStddev) {
  TimeSeries s("x", {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_NEAR(s.Stddev(), std::sqrt(1.25), 1e-9);
}

TEST(ZNormalizeTest, ProducesZeroMeanUnitVar) {
  std::vector<float> v{1, 5, 3, 9, 2, 8, 4, 7};
  ZNormalize(v);
  double mean = 0, var = 0;
  for (float x : v) mean += x;
  mean /= v.size();
  for (float x : v) var += (x - mean) * (x - mean);
  var /= v.size();
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var, 1.0, 1e-4);
}

TEST(ZNormalizeTest, ConstantSeriesCentersOnly) {
  std::vector<float> v(16, 3.0f);
  ZNormalize(v);
  for (float x : v) EXPECT_NEAR(x, 0.0f, 1e-6);
}

TEST(WindowTest, NonOverlappingCoversSeries) {
  TimeSeries s = MakeSeries(256);
  WindowOptions opts;
  opts.length = 64;
  opts.stride = 64;
  opts.z_normalize = false;
  auto windows = ExtractWindows(s, 3, opts);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 4u);
  for (const auto& w : *windows) {
    EXPECT_EQ(w.values.size(), 64u);
    EXPECT_EQ(w.series_index, 3u);
  }
  EXPECT_EQ((*windows)[3].offset, 192u);
}

TEST(WindowTest, FinalPartialWindowAlignsToEnd) {
  TimeSeries s = MakeSeries(100);
  WindowOptions opts;
  opts.length = 64;
  opts.stride = 64;
  auto windows = ExtractWindows(s, 0, opts);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 2u);
  EXPECT_EQ((*windows)[1].offset, 36u);  // 100 - 64
}

TEST(WindowTest, ShortSeriesPadsByEdgeReplication) {
  TimeSeries s("short", {1.0f, 2.0f, 3.0f});
  WindowOptions opts;
  opts.length = 8;
  opts.z_normalize = false;
  auto windows = ExtractWindows(s, 0, opts);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].values.size(), 8u);
  EXPECT_FLOAT_EQ((*windows)[0].values[7], 3.0f);
}

TEST(WindowTest, ZeroLengthRejected) {
  TimeSeries s = MakeSeries(10);
  WindowOptions opts;
  opts.length = 0;
  EXPECT_FALSE(ExtractWindows(s, 0, opts).ok());
}

TEST(WindowTest, OverlappingStride) {
  TimeSeries s = MakeSeries(128);
  WindowOptions opts;
  opts.length = 64;
  opts.stride = 32;
  auto windows = ExtractWindows(s, 0, opts);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->size(), 3u);  // offsets 0, 32, 64
}

TEST(WindowTest, MultiSeriesConcatenation) {
  std::vector<TimeSeries> multi{MakeSeries(128), MakeSeries(64)};
  WindowOptions opts;
  opts.length = 64;
  auto windows = ExtractWindows(multi, opts);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 3u);
  EXPECT_EQ((*windows)[0].series_index, 0u);
  EXPECT_EQ((*windows)[2].series_index, 1u);
}

TEST(WindowTest, ZNormalizedWindows) {
  TimeSeries s = MakeSeries(64);
  WindowOptions opts;
  opts.length = 32;
  opts.z_normalize = true;
  auto windows = ExtractWindows(s, 0, opts);
  ASSERT_TRUE(windows.ok());
  for (const auto& w : *windows) {
    double mean = 0;
    for (float x : w.values) mean += x;
    EXPECT_NEAR(mean / w.values.size(), 0.0, 1e-5);
  }
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  Dataset ds;
  ds.name = "roundtrip";
  ds.domain_description = "a test domain";
  TimeSeries s = MakeSeries(40);
  ASSERT_TRUE(s.MarkAnomaly(10, 15).ok());
  ds.series.push_back(s);
  ds.series.push_back(MakeSeries(30));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_ds_test").string();
  ASSERT_TRUE(SaveDataset(ds, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->series.size(), 2u);
  EXPECT_EQ(loaded->domain_description, "a test domain");
  EXPECT_EQ(loaded->series[0].length(), 40u);
  EXPECT_EQ(loaded->series[0].AnomalyRegions().size(), 1u);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_FLOAT_EQ(loaded->series[0].value(i), ds.series[0].value(i));
  }
  std::filesystem::remove_all(dir);
}

TEST(DatasetTest, SplitFractionAndDeterminism) {
  Dataset ds;
  ds.name = "split";
  for (int i = 0; i < 10; ++i) ds.series.push_back(MakeSeries(32));
  auto a = SplitSeries(ds, 0.7, 99);
  auto b = SplitSeries(ds, 0.7, 99);
  EXPECT_EQ(a.train.size(), 7u);
  EXPECT_EQ(a.test.size(), 3u);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].name(), b.train[i].name());
  }
}

TEST(DatasetTest, SplitKeepsAtLeastOneTrain) {
  Dataset ds;
  ds.series.push_back(MakeSeries(32));
  auto split = SplitSeries(ds, 0.01, 1);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.test.size(), 0u);
}

TEST(DatasetTest, EmptySplit) {
  Dataset ds;
  auto split = SplitSeries(ds, 0.5, 1);
  EXPECT_TRUE(split.train.empty());
  EXPECT_TRUE(split.test.empty());
}

}  // namespace
}  // namespace kdsel::ts
