#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/families.h"

namespace kdsel::core {
namespace {

/// Fake detector returning a fixed error (or constant scores) to pin the
/// matrix build's failure semantics.
class FakeDetector : public tsad::Detector {
 public:
  FakeDetector(std::string name, Status error)
      : name_(std::move(name)), error_(std::move(error)) {}

  std::string name() const override { return name_; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override {
    if (!error_.ok()) return error_;
    return std::vector<float>(series.length(), 0.5f);
  }

 private:
  std::string name_;
  Status error_;
};

/// A pair of labeled series with obvious spike anomalies.
std::vector<ts::TimeSeries> MakeLabeledSeries(size_t count, uint64_t seed) {
  std::vector<ts::TimeSeries> series;
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    auto family = (i % 2 == 0) ? datagen::Family::kYahoo
                               : datagen::Family::kEcg;
    auto s = datagen::GenerateSeries(family, 320, i, rng);
    KDSEL_CHECK(s.ok());
    series.push_back(std::move(s).value());
  }
  return series;
}

TEST(PipelineTest, EvaluateDetectorsProducesFullRow) {
  auto models = tsad::BuildDefaultModelSet(3);
  auto series = MakeLabeledSeries(1, 1);
  auto perf = EvaluateDetectorsOnSeries(models, series[0]);
  ASSERT_TRUE(perf.ok()) << perf.status();
  ASSERT_EQ(perf->size(), 12u);
  for (float p : *perf) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(PipelineTest, EvaluateDetectorsRequiresLabels) {
  auto models = tsad::BuildDefaultModelSet(3);
  ts::TimeSeries unlabeled("x", std::vector<float>(300, 1.0f));
  EXPECT_FALSE(EvaluateDetectorsOnSeries(models, unlabeled).ok());
}

TEST(PipelineTest, InvalidArgumentScoresWorstCaseAndIsCounted) {
  std::vector<std::unique_ptr<tsad::Detector>> models;
  models.push_back(std::make_unique<FakeDetector>("ok", Status::OK()));
  models.push_back(std::make_unique<FakeDetector>(
      "picky", Status::InvalidArgument("series too short")));
  auto series = MakeLabeledSeries(1, 7);
  std::vector<size_t> failures;
  auto perf = EvaluateDetectorsOnSeries(models, series[0],
                                        metrics::Metric::kAucPr, &failures);
  ASSERT_TRUE(perf.ok()) << perf.status();
  ASSERT_EQ(perf->size(), 2u);
  EXPECT_EQ((*perf)[1], 0.0f);  // Worst case for the picky detector.
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0], 0u);
  EXPECT_EQ(failures[1], 1u);
}

TEST(PipelineTest, IoAndInternalErrorsPropagate) {
  auto series = MakeLabeledSeries(1, 8);
  for (Status error : {Status::IoError("model file corrupt"),
                       Status::Internal("detector bug")}) {
    std::vector<std::unique_ptr<tsad::Detector>> models;
    models.push_back(std::make_unique<FakeDetector>("ok", Status::OK()));
    models.push_back(std::make_unique<FakeDetector>("broken", error));
    auto perf = EvaluateDetectorsOnSeries(models, series[0]);
    ASSERT_FALSE(perf.ok());
    EXPECT_EQ(perf.status().code(), error.code());
    EXPECT_NE(perf.status().message().find("broken"), std::string::npos)
        << perf.status();
  }
}

TEST(PipelineTest, PerformanceMatrixMatchesPerSeriesRows) {
  auto models = tsad::BuildDefaultModelSet(3);
  auto series = MakeLabeledSeries(4, 9);
  std::vector<const ts::TimeSeries*> ptrs;
  for (const auto& s : series) ptrs.push_back(&s);
  auto matrix = EvaluatePerformanceMatrix(models, ptrs);
  ASSERT_TRUE(matrix.ok()) << matrix.status();
  ASSERT_EQ(matrix->size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    auto row = EvaluateDetectorsOnSeries(models, series[i]);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*matrix)[i], *row) << "series " << i;
  }
}

TEST(PipelineTest, BuildTrainingDataPropagatesLabelsAndTexts) {
  auto series = MakeLabeledSeries(2, 2);
  std::vector<std::vector<float>> perf{{0.1f, 0.9f, 0.3f},
                                       {0.8f, 0.2f, 0.1f}};
  ts::WindowOptions wo;
  wo.length = 64;
  wo.stride = 64;
  auto data = BuildSelectorTrainingData(series, perf, wo);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->num_classes, 3u);
  EXPECT_GT(data->size(), 2u);
  ASSERT_EQ(data->labels.size(), data->windows.size());
  // Shared layout: one performance row / text per series, referenced by
  // every window of the series through the index vectors.
  ASSERT_EQ(data->performance.size(), 2u);
  ASSERT_EQ(data->texts.size(), 2u);
  ASSERT_EQ(data->performance_index.size(), data->windows.size());
  ASSERT_EQ(data->text_index.size(), data->windows.size());
  EXPECT_EQ(data->performance_index.front(), 0u);
  EXPECT_EQ(data->performance_index.back(), 1u);
  for (size_t i = 0; i < data->size(); ++i) {
    EXPECT_EQ(data->PerformanceRow(i), data->performance_index[i]);
    EXPECT_EQ(data->TextRow(i), data->text_index[i]);
  }
  EXPECT_EQ(data->performance[0], perf[0]);
  EXPECT_EQ(data->performance[1], perf[1]);
  // Windows of series 0 carry label 1; series 1 carries label 0.
  EXPECT_EQ(data->labels.front(), 1);
  EXPECT_EQ(data->labels.back(), 0);
  EXPECT_NE(data->texts.front().find("This is a time series from dataset"),
            std::string::npos);
}

TEST(PipelineTest, BuildTrainingDataValidatesShapes) {
  auto series = MakeLabeledSeries(2, 3);
  ts::WindowOptions wo;
  wo.length = 64;
  EXPECT_FALSE(
      BuildSelectorTrainingData(series, {{0.1f}}, wo).ok());
  EXPECT_FALSE(BuildSelectorTrainingData({}, {}, wo).ok());
  std::vector<std::vector<float>> ragged{{0.1f, 0.2f}, {0.3f}};
  EXPECT_FALSE(BuildSelectorTrainingData(series, ragged, wo).ok());
}

TEST(PipelineTest, DetectWithSelectionEndToEnd) {
  auto series = MakeLabeledSeries(6, 4);
  auto models = tsad::BuildDefaultModelSet(5);
  std::vector<std::vector<float>> perf;
  for (const auto& s : series) {
    auto row = EvaluateDetectorsOnSeries(models, s);
    ASSERT_TRUE(row.ok());
    perf.push_back(std::move(row).value());
  }
  ts::WindowOptions wo;
  wo.length = 64;
  wo.stride = 64;
  auto data = BuildSelectorTrainingData(series, perf, wo);
  ASSERT_TRUE(data.ok());
  TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 3;
  opts.seed = 5;
  auto selector = TrainSelector(*data, opts, nullptr);
  ASSERT_TRUE(selector.ok());

  auto result = DetectWithSelection(**selector, models, series[0], wo);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->selected_model, 0);
  EXPECT_LT(result->selected_model, 12);
  EXPECT_EQ(result->model_name,
            models[static_cast<size_t>(result->selected_model)]->name());
  EXPECT_EQ(result->anomaly_scores.size(), series[0].length());
  EXPECT_GE(result->auc_pr, 0.0);
  EXPECT_LE(result->auc_pr, 1.0);
}

TEST(SelectorManagerTest, SaveListLoadRemove) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_mgr_test").string();
  std::filesystem::remove_all(dir);
  SelectorManager manager(dir);

  auto empty = manager.List();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  // Train a tiny selector to manage.
  SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    std::vector<float> w(16);
    int c = i % 2;
    for (size_t t = 0; t < 16; ++t) {
      w[t] = static_cast<float>(c ? std::sin(1.5 * t) : std::sin(0.2 * t)) +
             static_cast<float>(0.05 * rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  auto selector = TrainSelector(data, opts, nullptr);
  ASSERT_TRUE(selector.ok());

  ASSERT_TRUE(manager.Save(**selector, "my_selector").ok());
  auto names = manager.List();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "my_selector");

  auto loaded = manager.Load("my_selector");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto p1 = (*selector)->Predict(data.windows);
  auto p2 = (*loaded)->Predict(data.windows);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);

  EXPECT_TRUE(manager.Remove("my_selector").ok());
  EXPECT_FALSE(manager.Remove("my_selector").ok());
  auto after = manager.List();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
  std::filesystem::remove_all(dir);
}

TEST(SelectorManagerTest, RejectsBadNames) {
  SelectorManager manager("/tmp/kdsel_mgr_badnames");
  SelectorTrainingData data;
  data.num_classes = 2;
  for (int i = 0; i < 8; ++i) {
    data.windows.push_back(std::vector<float>(16, static_cast<float>(i)));
    data.labels.push_back(i % 2);
  }
  TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 1;
  auto selector = TrainSelector(data, opts, nullptr);
  ASSERT_TRUE(selector.ok());
  EXPECT_FALSE(manager.Save(**selector, "").ok());
  EXPECT_FALSE(manager.Save(**selector, "a/b").ok());
}

TEST(SelectorManagerTest, LoadMissingFails) {
  SelectorManager manager("/tmp/kdsel_mgr_missing");
  EXPECT_FALSE(manager.Load("ghost").ok());
}

}  // namespace
}  // namespace kdsel::core
