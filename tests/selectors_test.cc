#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "selectors/backbone.h"
#include "selectors/classical.h"
#include "selectors/decision_tree.h"
#include "selectors/dtw.h"
#include "selectors/more_classical.h"
#include "selectors/rocket.h"
#include "selectors/selector.h"

namespace kdsel::selectors {
namespace {

/// A 3-class window-classification task with clearly distinct shapes:
/// class 0 = low-frequency sine, class 1 = high-frequency sine,
/// class 2 = noisy ramp. Any reasonable TSC method separates these.
TrainingData MakeShapeTask(size_t per_class, uint64_t seed,
                           size_t window = 32) {
  Rng rng(seed);
  TrainingData data;
  data.num_classes = 3;
  for (size_t i = 0; i < per_class; ++i) {
    for (int c = 0; c < 3; ++c) {
      std::vector<float> w(window);
      double phase = rng.Uniform(0, 6.28);
      for (size_t t = 0; t < window; ++t) {
        switch (c) {
          case 0:
            w[t] = static_cast<float>(std::sin(0.2 * t + phase) +
                                      0.1 * rng.Normal());
            break;
          case 1:
            w[t] = static_cast<float>(std::sin(1.3 * t + phase) +
                                      0.1 * rng.Normal());
            break;
          default:
            w[t] = static_cast<float>(0.08 * t + 0.2 * rng.Normal());
        }
      }
      data.windows.push_back(std::move(w));
      data.labels.push_back(c);
    }
  }
  return data;
}

double AccuracyOn(Selector& selector, const TrainingData& data) {
  auto pred = selector.Predict(data.windows);
  KDSEL_CHECK(pred.ok());
  size_t hits = 0;
  for (size_t i = 0; i < pred->size(); ++i) {
    hits += ((*pred)[i] == data.labels[i]);
  }
  return static_cast<double>(hits) / static_cast<double>(pred->size());
}

using SelectorFactory = std::function<std::unique_ptr<Selector>()>;

struct SelectorCase {
  std::string name;
  SelectorFactory make;
};

std::vector<SelectorCase> AllClassicalSelectors() {
  return {
      {"KNN", [] { return std::make_unique<KnnSelector>(KnnSelector::Options{}); }},
      {"SVC", [] { return std::make_unique<SvcSelector>(SvcSelector::Options{}); }},
      {"AdaBoost",
       [] {
         return std::make_unique<AdaBoostSelector>(AdaBoostSelector::Options{});
       }},
      {"RandomForest",
       [] {
         return std::make_unique<RandomForestSelector>(
             RandomForestSelector::Options{});
       }},
      {"Rocket",
       [] { return std::make_unique<RocketSelector>(RocketSelector::Options{}); }},
      {"ED-1NN", [] { return std::make_unique<Ed1nnSelector>(); }},
      {"Logistic", [] { return std::make_unique<LogisticSelector>(); }},
      {"NearestCentroid",
       [] { return std::make_unique<NearestCentroidSelector>(); }},
      {"GaussianNB", [] { return std::make_unique<GaussianNbSelector>(); }},
      {"DTW-1NN", [] { return std::make_unique<DtwSelector>(); }},
  };
}

class ClassicalSelectorTest : public ::testing::TestWithParam<SelectorCase> {};

TEST_P(ClassicalSelectorTest, LearnsSeparableShapes) {
  auto selector = GetParam().make();
  EXPECT_EQ(selector->name(), GetParam().name);
  TrainingData train = MakeShapeTask(25, 1);
  ASSERT_TRUE(selector->Fit(train).ok());
  TrainingData test = MakeShapeTask(10, 2);
  EXPECT_GT(AccuracyOn(*selector, test), 0.7)
      << GetParam().name << " failed on a separable task";
}

TEST_P(ClassicalSelectorTest, PredictBeforeFitFails) {
  auto selector = GetParam().make();
  EXPECT_FALSE(selector->Predict({{1.0f, 2.0f}}).ok());
}

TEST_P(ClassicalSelectorTest, RejectsInvalidTrainingData) {
  auto selector = GetParam().make();
  TrainingData empty;
  empty.num_classes = 2;
  EXPECT_FALSE(selector->Fit(empty).ok());

  TrainingData mismatched = MakeShapeTask(3, 1);
  mismatched.labels.pop_back();
  EXPECT_FALSE(selector->Fit(mismatched).ok());

  TrainingData bad_label = MakeShapeTask(3, 1);
  bad_label.labels[0] = 99;
  EXPECT_FALSE(selector->Fit(bad_label).ok());
}

INSTANTIATE_TEST_SUITE_P(AllClassical, ClassicalSelectorTest,
                         ::testing::ValuesIn(AllClassicalSelectors()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(DecisionTreeTest, FitsAxisAlignedSplit) {
  std::vector<std::vector<float>> rows{{0.f}, {1.f}, {2.f}, {10.f}, {11.f}};
  std::vector<int> labels{0, 0, 0, 1, 1};
  DecisionTree tree(DecisionTree::Options{});
  ASSERT_TRUE(tree.Fit(rows, labels, 2, {}).ok());
  EXPECT_EQ(tree.PredictOne({1.5f}), 0);
  EXPECT_EQ(tree.PredictOne({10.5f}), 1);
}

TEST(DecisionTreeTest, FitsXorWithDepth3) {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    float a = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    float b = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    rows.push_back({a + 0.05f * static_cast<float>(rng.Normal()),
                    b + 0.05f * static_cast<float>(rng.Normal())});
    labels.push_back((a != b) ? 1 : 0);
  }
  // Depth 2 can fail on XOR (zero Gini gain at the root makes the first
  // split arbitrary); depth 3 always has room to recover.
  DecisionTree::Options opts;
  opts.max_depth = 3;
  DecisionTree tree(opts);
  ASSERT_TRUE(tree.Fit(rows, labels, 2, {}).ok());
  auto pred = tree.Predict(rows);
  size_t hits = 0;
  for (size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == labels[i]);
  EXPECT_GT(static_cast<double>(hits) / pred.size(), 0.9);
}

TEST(DecisionTreeTest, WeightsShiftTheMajority) {
  // Two identical points with different labels: weight decides.
  std::vector<std::vector<float>> rows{{1.0f}, {1.0f}};
  std::vector<int> labels{0, 1};
  DecisionTree tree(DecisionTree::Options{});
  ASSERT_TRUE(tree.Fit(rows, labels, 2, {0.1, 10.0}).ok());
  EXPECT_EQ(tree.PredictOne({1.0f}), 1);
}

TEST(DecisionTreeTest, RespectsMaxDepthOne) {
  TrainingData task = MakeShapeTask(10, 3, 8);
  std::vector<std::vector<float>> rows = task.windows;
  DecisionTree::Options opts;
  opts.max_depth = 1;
  DecisionTree tree(opts);
  ASSERT_TRUE(tree.Fit(rows, task.labels, 3, {}).ok());
  EXPECT_LE(tree.node_count(), 3u);  // root + two leaves
}

TEST(DecisionTreeTest, RejectsBadInput) {
  DecisionTree tree(DecisionTree::Options{});
  EXPECT_FALSE(tree.Fit({}, {}, 2, {}).ok());
  EXPECT_FALSE(tree.Fit({{1.0f}}, {0, 1}, 2, {}).ok());
  EXPECT_FALSE(tree.Fit({{1.0f}}, {0}, 2, {0.5, 0.5}).ok());
}

class BackboneTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BackboneTest, ForwardShapeAndDeterminism) {
  Rng rng(4);
  auto backbone = BuildBackbone(GetParam(), 32, rng);
  ASSERT_TRUE(backbone.ok());
  EXPECT_EQ((*backbone)->name(), GetParam());
  EXPECT_EQ((*backbone)->input_length(), 32u);
  EXPECT_GT((*backbone)->feature_dim(), 0u);

  nn::Tensor x({4, 32});
  Rng data_rng(5);
  for (float& v : x.mutable_data()) {
    v = static_cast<float>(data_rng.Normal());
  }
  nn::Tensor z1 = (*backbone)->Forward(x, /*training=*/false);
  EXPECT_EQ(z1.dim(0), 4u);
  EXPECT_EQ(z1.dim(1), (*backbone)->feature_dim());
  nn::Tensor z2 = (*backbone)->Forward(x, /*training=*/false);
  for (size_t i = 0; i < z1.size(); ++i) EXPECT_FLOAT_EQ(z1[i], z2[i]);
}

TEST_P(BackboneTest, HasTrainableParameters) {
  Rng rng(6);
  auto backbone = BuildBackbone(GetParam(), 32, rng);
  ASSERT_TRUE(backbone.ok());
  EXPECT_GT(nn::ParameterCount(**backbone), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, BackboneTest,
                         ::testing::ValuesIn(BackboneNames()),
                         [](const auto& info) { return info.param; });

TEST(BackboneFactoryTest, UnknownNameRejected) {
  Rng rng(1);
  EXPECT_FALSE(BuildBackbone("LSTMNet", 32, rng).ok());
}

TEST(BackboneFactoryTest, TransformerHandlesOddWindow) {
  Rng rng(1);
  // 30 is not divisible by the default patch size 8; the factory must
  // pick a compatible patch size rather than crash.
  auto backbone = BuildBackbone("Transformer", 30, rng);
  ASSERT_TRUE(backbone.ok());
  nn::Tensor x({2, 30});
  nn::Tensor z = (*backbone)->Forward(x, false);
  EXPECT_EQ(z.dim(0), 2u);
}

}  // namespace
}  // namespace kdsel::selectors
