#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "common/rng.h"
#include "datagen/families.h"
#include "metrics/metrics.h"
#include "tsad/detector.h"
#include "tsad/util.h"

namespace kdsel::tsad {
namespace {

/// A sinusoid with an obvious injected anomaly block (amplitude burst +
/// spikes) that every detector family should be able to rank above the
/// normal region.
ts::TimeSeries EasyAnomalySeries(size_t n = 600) {
  std::vector<float> v(n);
  Rng rng(42);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(i * 0.2) +
                              0.05 * rng.Normal());
  }
  ts::TimeSeries series("easy", std::move(v));
  // A loud burst in the middle.
  for (size_t i = 300; i < 330; ++i) {
    series.mutable_values()[i] +=
        static_cast<float>(4.0 + 2.0 * std::sin(i * 1.7));
  }
  KDSEL_CHECK(series.MarkAnomaly(300, 330).ok());
  return series;
}

TEST(DetectorRegistryTest, TwelveCanonicalModels) {
  EXPECT_EQ(CanonicalModelNames().size(), 12u);
  auto models = BuildDefaultModelSet(1);
  ASSERT_EQ(models.size(), 12u);
  for (size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(models[i]->name(), CanonicalModelNames()[i]);
  }
}

TEST(DetectorRegistryTest, UnknownNameRejected) {
  EXPECT_FALSE(BuildDetector("NotAModel", 1).ok());
}

class DetectorTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Detector> Build() {
    auto d = BuildDetector(GetParam(), /*seed=*/3);
    KDSEL_CHECK(d.ok());
    return std::move(d).value();
  }
};

TEST_P(DetectorTest, ScoresHaveSeriesLengthAndAreFinite) {
  auto detector = Build();
  ts::TimeSeries series = EasyAnomalySeries();
  auto scores = detector->Score(series);
  ASSERT_TRUE(scores.ok()) << scores.status();
  ASSERT_EQ(scores->size(), series.length());
  for (float s : *scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST_P(DetectorTest, RanksObviousAnomalyAboveNormal) {
  auto detector = Build();
  ts::TimeSeries series = EasyAnomalySeries();
  auto scores = detector->Score(series);
  ASSERT_TRUE(scores.ok());
  auto auc = metrics::AucRoc(*scores, series.labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.6) << detector->name()
                       << " failed to rank an obvious anomaly";
}

TEST_P(DetectorTest, RejectsTooShortSeries) {
  auto detector = Build();
  ts::TimeSeries tiny("tiny", {1.0f, 2.0f, 3.0f});
  ASSERT_TRUE(tiny.SetLabels({0, 0, 1}).ok());
  EXPECT_FALSE(detector->Score(tiny).ok());
}

TEST_P(DetectorTest, DeterministicScores) {
  ts::TimeSeries series = EasyAnomalySeries(400);
  auto d1 = Build();
  auto d2 = Build();
  auto s1 = d1->Score(series);
  auto s2 = d2->Score(series);
  ASSERT_TRUE(s1.ok() && s2.ok());
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_FLOAT_EQ((*s1)[i], (*s2)[i]) << GetParam() << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, DetectorTest,
                         ::testing::ValuesIn(CanonicalModelNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(UtilTest, EmbedWindowsShapeAndContent) {
  ts::TimeSeries s("x", {1, 2, 3, 4, 5});
  auto rows = EmbedWindows(s, 3, /*z_normalize=*/false);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<float>{1, 2, 3}));
  EXPECT_EQ(rows[2], (std::vector<float>{3, 4, 5}));
}

TEST(UtilTest, EmbedWindowsTooShort) {
  ts::TimeSeries s("x", {1, 2});
  EXPECT_TRUE(EmbedWindows(s, 3, false).empty());
}

TEST(UtilTest, WindowToPointAveragesCoverage) {
  // Two windows of size 2 over 3 points: point 1 covered by both.
  std::vector<float> window_scores{1.0f, 3.0f};
  auto point = WindowToPointScores(window_scores, 2, 3);
  ASSERT_EQ(point.size(), 3u);
  EXPECT_FLOAT_EQ(point[0], 1.0f);
  EXPECT_FLOAT_EQ(point[1], 2.0f);
  EXPECT_FLOAT_EQ(point[2], 3.0f);
}

TEST(UtilTest, MinMaxNormalize) {
  std::vector<float> v{2, 4, 6};
  MinMaxNormalize(v);
  EXPECT_FLOAT_EQ(v[0], 0.0f);
  EXPECT_FLOAT_EQ(v[1], 0.5f);
  EXPECT_FLOAT_EQ(v[2], 1.0f);
  std::vector<float> constant{5, 5, 5};
  MinMaxNormalize(constant);
  for (float x : constant) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(UtilTest, KMeansSeparatesObviousClusters) {
  Rng rng(5);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({static_cast<float>(rng.Normal(0, 0.1)),
                    static_cast<float>(rng.Normal(0, 0.1))});
    rows.push_back({static_cast<float>(rng.Normal(10, 0.1)),
                    static_cast<float>(rng.Normal(10, 0.1))});
  }
  auto km = KMeans(rows, 2, 20, rng);
  ASSERT_TRUE(km.ok());
  ASSERT_EQ(km->centroids.size(), 2u);
  // Each cluster should hold half the points.
  EXPECT_EQ(km->cluster_size[0], 30u);
  EXPECT_EQ(km->cluster_size[1], 30u);
  // Centroids near (0,0) and (10,10) in some order.
  double c0 = km->centroids[0][0] + km->centroids[0][1];
  double c1 = km->centroids[1][0] + km->centroids[1][1];
  EXPECT_NEAR(std::min(c0, c1), 0.0, 0.5);
  EXPECT_NEAR(std::max(c0, c1), 20.0, 0.5);
}

TEST(UtilTest, KMeansRejectsEmptyInput) {
  Rng rng(1);
  EXPECT_FALSE(KMeans({}, 2, 5, rng).ok());
}

TEST(UtilTest, KMeansClampsKToRows) {
  Rng rng(1);
  std::vector<std::vector<float>> rows{{1.0f}, {2.0f}};
  auto km = KMeans(rows, 10, 5, rng);
  ASSERT_TRUE(km.ok());
  EXPECT_LE(km->centroids.size(), 2u);
}

/// Cross-family sanity: different dataset families must prefer
/// different detectors (the premise of model selection). We check that
/// at least 3 distinct detectors win somewhere across families.
TEST(ModelHeterogeneityTest, NoSingleDetectorWinsEverywhere) {
  auto models = BuildDefaultModelSet(7);
  std::set<int> winners;
  Rng rng(11);
  for (datagen::Family family :
       {datagen::Family::kYahoo, datagen::Family::kEcg,
        datagen::Family::kMgab, datagen::Family::kNab,
        datagen::Family::kSensorScope, datagen::Family::kGhl}) {
    auto series = datagen::GenerateSeries(family, 600, 0, rng);
    ASSERT_TRUE(series.ok());
    if (series->NumAnomalies() == 0) continue;
    double best = -1;
    int best_model = -1;
    for (size_t j = 0; j < models.size(); ++j) {
      auto scores = models[j]->Score(*series);
      if (!scores.ok()) continue;
      auto auc = metrics::AucPr(*scores, series->labels());
      ASSERT_TRUE(auc.ok());
      if (*auc > best) {
        best = *auc;
        best_model = static_cast<int>(j);
      }
    }
    winners.insert(best_model);
  }
  EXPECT_GE(winners.size(), 3u)
      << "detector rankings should differ across families";
}

}  // namespace
}  // namespace kdsel::tsad
