// Race-stress tests for the serving layer, built to run under
// ThreadSanitizer (-DKDSEL_SANITIZE=thread). Each test hammers one
// cross-thread seam hard enough that TSan sees every pairing at least
// once, while staying small enough for CI:
//
//   * SelectorRegistry: Register (hot reload) vs Get/GetOrLoad vs Evict
//     vs ResidentNames from many threads at once.
//   * ServerStats: ToJsonString/Summarize export racing live Record*
//     calls on the inference path.
//   * InferenceServer lifecycle: concurrent Stop() calls (client thread
//     vs destructor path) with requests still in flight.
//   * obs::Histogram: Reset() racing Record() and Summarize(), the
//     pairing behind live `kdsel serve` stats scrapes.
//
// Iteration counts are deliberately modest: under TSan every memory
// access is instrumented (~5-15x slowdown), and a data race is caught
// on the first racy pairing, not the thousandth.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/stats.h"

namespace kdsel::serve {
namespace {

/// Trains a small ConvNet selector on separable synthetic windows
/// (same recipe as serve_test, kept tiny so TSan runs stay fast).
std::unique_ptr<core::TrainedSelector> TrainTinySelector(uint64_t seed = 1) {
  core::SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    const int c = i % 2;
    std::vector<float> w(16);
    for (size_t t = 0; t < 16; ++t) {
      w[t] = std::sin((0.3 + 0.9 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = seed;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

ts::TimeSeries MakeSineSeries(size_t length, double frequency) {
  std::vector<float> values(length);
  for (size_t i = 0; i < length; ++i) {
    values[i] =
        static_cast<float>(std::sin(frequency * static_cast<double>(i)));
  }
  return ts::TimeSeries("stress", std::move(values));
}

// Register / Get / GetOrLoad / Evict / ResidentNames all racing on one
// registry. Correctness bar: no TSan report, snapshots stay usable
// (non-null selector, monotone versions per name), and the registry
// survives eviction racing a re-register.
TEST(RaceStressTest, RegistryReloadEvictAndReadRace) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_race_none"));
  auto seedling = TrainTinySelector();
  ASSERT_TRUE(registry.Register("hot", seedling->Clone().value()).ok());
  ASSERT_TRUE(registry.Register("cold", seedling->Clone().value()).ok());

  constexpr int kIterations = 40;
  std::atomic<int> errors{0};
  // Raw threads on purpose: the stress tests need uncoordinated
  // concurrency the shared pool deliberately does not provide.
  std::vector<std::thread> threads;  // kdsel-lint: allow(raw-thread)

  // Two reloaders: keep re-registering fresh clones of "hot".
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        auto clone = seedling->Clone();
        if (!clone.ok() ||
            !registry.Register("hot", std::move(clone).value()).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Evictor: bounces "cold" in and out of residency.
  threads.emplace_back([&] {
    for (int i = 0; i < kIterations; ++i) {
      registry.Evict("cold");
      auto clone = seedling->Clone();
      if (!clone.ok() ||
          !registry.Register("cold", std::move(clone).value()).ok()) {
        errors.fetch_add(1);
      }
    }
  });
  // Readers: snapshots must always be intact, versions monotone.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      uint64_t last_version = 0;
      for (int i = 0; i < kIterations * 2; ++i) {
        auto snapshot = registry.Get("hot");
        if (!snapshot.ok() || snapshot->selector == nullptr ||
            snapshot->version < last_version) {
          errors.fetch_add(1);
          continue;
        }
        last_version = snapshot->version;
        if (snapshot->selector->num_classes() != 2) errors.fetch_add(1);
        registry.ResidentNames();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  // "cold" finished each evictor iteration re-registered.
  EXPECT_TRUE(registry.Get("cold").ok());
}

// Clients submit inference while one thread hot-reloads the selector and
// another continuously exports ServerStats as JSON. This is the exact
// production pairing: metrics scrapes must never tear or race against
// Record* calls on the hot path.
TEST(RaceStressTest, StatsExportRacesInferenceAndReload) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_race_none"));
  auto trained = TrainTinySelector();
  ASSERT_TRUE(registry.Register("tiny", std::move(trained)).ok());

  ServerOptions opts;
  opts.num_workers = 3;
  opts.max_batch = 4;
  opts.max_delay_us = 200;
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  const ts::TimeSeries series = MakeSineSeries(64, 0.4);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  // Stats scraper: full JSON export plus the scalar accessors.
  std::thread scraper([&] {  // kdsel-lint: allow(raw-thread)
    while (!done.load(std::memory_order_acquire)) {
      auto parsed = Json::Parse(server.stats().ToJsonString());
      if (!parsed.ok()) failures.fetch_add(1);
      server.stats().MeanBatchSize();
      server.stats().completed();
      server.stats()
          .endpoint(ServerStats::Endpoint::kSelect)
          .total.Summarize();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  // Reloader: swaps in identical weights, so responses stay stable.
  std::thread reloader([&] {  // kdsel-lint: allow(raw-thread)
    while (!done.load(std::memory_order_acquire)) {
      auto snapshot = registry.Get("tiny");
      if (!snapshot.ok()) {
        failures.fetch_add(1);
        break;
      }
      auto clone = snapshot->selector->Clone();
      if (!clone.ok() ||
          !registry.Register("tiny", std::move(clone).value()).ok()) {
        failures.fetch_add(1);
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 10;
  std::vector<std::thread> clients;  // kdsel-lint: allow(raw-thread)
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (size_t r = 0; r < kPerClient; ++r) {
        SelectRequest request;
        request.selector = "tiny";
        request.series = series;
        request.run_detection = false;
        auto response = server.Run(std::move(request));
        if (!response.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  reloader.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().completed(), kClients * kPerClient);
  EXPECT_EQ(server.stats().failed(), 0u);
}

// Fp32 and int8 variants of one selector serve side by side (registry
// entries "tiny" and "tiny.int8") while a reloader keeps swapping fresh
// int8 clones in. Clones of a quantized selector re-quantize from the
// stored scales, so responses must stay stable across swaps, and the
// per-variant stats counters must attribute every request.
TEST(RaceStressTest, Int8VariantServesAndReloadsConcurrentlyWithFp32) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_race_none"));
  auto trained = TrainTinySelector();
  std::vector<std::vector<float>> calib;
  for (int i = 0; i < 8; ++i) {
    std::vector<float> w(16);
    for (size_t t = 0; t < 16; ++t) {
      w[t] = static_cast<float>(
          std::sin((0.3 + 0.9 * (i % 2)) * static_cast<double>(t)));
    }
    calib.push_back(std::move(w));
  }
  auto quantized = trained->QuantizeInt8(calib);
  ASSERT_TRUE(quantized.ok()) << quantized.status();
  ASSERT_TRUE((*quantized)->IsInt8());
  ASSERT_TRUE(registry.Register("tiny", std::move(trained)).ok());
  ASSERT_TRUE(registry.Register("tiny.int8", std::move(*quantized)).ok());

  ServerOptions opts;
  opts.num_workers = 3;
  opts.max_batch = 4;
  opts.max_delay_us = 200;
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  const ts::TimeSeries series = MakeSineSeries(64, 0.4);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  // Reloader: hot-swaps the int8 entry while both variants serve.
  std::thread reloader([&] {  // kdsel-lint: allow(raw-thread)
    while (!done.load(std::memory_order_acquire)) {
      auto snapshot = registry.Get("tiny.int8");
      if (!snapshot.ok()) {
        failures.fetch_add(1);
        break;
      }
      auto clone = snapshot->selector->Clone();
      if (!clone.ok() || !(*clone)->IsInt8() ||
          !registry.Register("tiny.int8", std::move(clone).value()).ok()) {
        failures.fetch_add(1);
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 10;
  std::vector<std::thread> clients;  // kdsel-lint: allow(raw-thread)
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kPerClient; ++r) {
        SelectRequest request;
        // Even clients hit fp32, odd clients the int8 variant.
        request.selector = (c % 2 == 0) ? "tiny" : "tiny.int8";
        request.series = series;
        request.run_detection = false;
        auto response = server.Run(std::move(request));
        if (!response.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  done.store(true, std::memory_order_release);
  reloader.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().completed(), kClients * kPerClient);
  EXPECT_EQ(server.stats().fp32_requests(), kClients / 2 * kPerClient);
  EXPECT_EQ(server.stats().int8_requests(), kClients / 2 * kPerClient);
}

// Stop() must be idempotent under concurrency: a client thread stopping
// the server races the destructor's Stop(). Before Stop() took the
// lifecycle lock, both callers could pass the started-and-not-stopped
// check and double-join the worker threads.
TEST(RaceStressTest, ConcurrentStopIsIdempotent) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_race_none"));
  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());

  for (int round = 0; round < 3; ++round) {
    ServerOptions opts;
    opts.num_workers = 2;
    opts.max_batch = 2;
    opts.max_delay_us = 100;
    InferenceServer server(&registry, opts);
    ASSERT_TRUE(server.Start().ok());

    const ts::TimeSeries series = MakeSineSeries(48, 0.3);
    std::vector<std::future<StatusOr<SelectResponse>>> futures;
    for (int i = 0; i < 6; ++i) {
      SelectRequest request;
      request.selector = "tiny";
      request.series = series;
      request.run_detection = false;
      auto submitted = server.Submit(std::move(request));
      ASSERT_TRUE(submitted.ok()) << submitted.status();
      futures.push_back(std::move(submitted).value());
    }

    std::vector<std::thread> stoppers;  // kdsel-lint: allow(raw-thread)
    for (int t = 0; t < 3; ++t) {
      stoppers.emplace_back([&server] { server.Stop(); });
    }
    for (auto& stopper : stoppers) stopper.join();

    // Stop drains: every accepted request still resolves successfully.
    for (auto& future : futures) {
      auto response = future.get();
      EXPECT_TRUE(response.ok()) << response.status();
    }
    // Double-stop from the same thread stays a no-op; the destructor
    // stops again when `server` leaves scope.
    server.Stop();
  }
}

// Histogram Reset() racing Record() and Summarize(). Contract under
// test (see obs/metrics.h): a summary never mixes pre- and post-reset
// buckets, so `count >= samples` always holds, min <= max, and the mean
// lies within the recorded value range. Recorders feed a fixed value so
// any torn read shows up as an out-of-range min/max/mean.
TEST(RaceStressTest, HistogramResetRacesRecordAndSummarize) {
  obs::Histogram histogram;
  constexpr double kValue = 42.0;
  constexpr int kIterations = 2000;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> threads;  // kdsel-lint: allow(raw-thread)
  // Recorders: hammer a constant value.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) histogram.Record(kValue);
    });
  }
  // Resetter: wipes mid-flight.
  threads.emplace_back([&] {
    for (int i = 0; i < kIterations / 10; ++i) {
      histogram.Reset();
      std::this_thread::yield();
    }
  });
  // Summarizer: every snapshot must be internally coherent.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::Histogram::Summary s = histogram.Summarize();
      if (s.count < s.samples) violations.fetch_add(1);
      if (s.samples > 0) {
        if (s.min > s.max) violations.fetch_add(1);
        if (s.min != kValue || s.max != kValue) violations.fetch_add(1);
        if (s.mean < s.min || s.mean > s.max) violations.fetch_add(1);
      }
    }
  });

  for (size_t t = 0; t + 1 < threads.size(); ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads.back().join();
  EXPECT_EQ(violations.load(), 0);

  // Quiescent: one final reset-and-record round is exact.
  histogram.Reset();
  histogram.Record(kValue);
  const obs::Histogram::Summary s = histogram.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.samples, 1u);
  EXPECT_EQ(s.min, kValue);
  EXPECT_EQ(s.max, kValue);
}

}  // namespace
}  // namespace kdsel::serve
