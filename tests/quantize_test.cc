// End-to-end correctness of int8 quantized selector inference (the bar
// the quantization pass has to clear before the registry serves it):
//
//   * Ranking parity: on fresh series from ALL 16 datagen families, the
//     int8 selector reproduces the fp32 top-1 detector choice on every
//     window and keeps Spearman >= 0.99 over the full detector ordering.
//   * Persistence: Save/Load of a quantized selector reproduces its
//     logits bit-for-bit (fp32 master weights + stored activation
//     scales; weight quantization is deterministic).
//   * Clone carries quantization over bit-for-bit (serve workers and
//     hot-reload paths run on clones).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/trainer.h"
#include "datagen/families.h"
#include "ts/window.h"

namespace kdsel::core {
namespace {

constexpr size_t kWindowLength = 32;
constexpr size_t kNumClasses = 12;  // Canonical detector-set size.

std::vector<std::vector<float>> FamilyWindows(datagen::Family family,
                                              size_t num_series,
                                              size_t series_length,
                                              size_t first_index,
                                              uint64_t seed) {
  Rng rng(seed);
  ts::WindowOptions wo;
  wo.length = kWindowLength;
  wo.stride = kWindowLength;
  std::vector<std::vector<float>> windows;
  for (size_t i = 0; i < num_series; ++i) {
    auto series =
        datagen::GenerateSeries(family, series_length, first_index + i, rng);
    KDSEL_CHECK(series.ok());
    auto extracted = ts::ExtractWindows(*series, 0, wo);
    KDSEL_CHECK(extracted.ok());
    for (auto& w : *extracted) windows.push_back(std::move(w.values));
  }
  return windows;
}

/// Trains a small ConvNet selector on windows from all 16 families, with
/// labels derived from the family index so logits have real structure.
std::unique_ptr<TrainedSelector> TrainFamilySelector(uint64_t seed = 3) {
  SelectorTrainingData data;
  data.num_classes = kNumClasses;
  const auto& families = datagen::AllFamilies();
  for (size_t f = 0; f < families.size(); ++f) {
    auto windows = FamilyWindows(families[f], /*num_series=*/2,
                                 /*series_length=*/160, /*first_index=*/0,
                                 seed + f);
    for (auto& w : windows) {
      data.windows.push_back(std::move(w));
      data.labels.push_back(static_cast<int>(f % kNumClasses));
    }
  }
  TrainerOptions opts;
  opts.backbone = "ConvNet";
  // Enough epochs that class margins are real: the parity test below
  // checks that quantization noise never flips a decision, which is
  // only a meaningful claim when decisions are not coin flips.
  opts.epochs = 10;
  opts.seed = seed;
  auto selector = TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

std::vector<std::vector<float>> CalibrationWindows(uint64_t seed = 77) {
  std::vector<std::vector<float>> calib;
  for (datagen::Family family : datagen::AllFamilies()) {
    auto windows = FamilyWindows(family, /*num_series=*/1,
                                 /*series_length=*/160, /*first_index=*/5,
                                 seed);
    for (auto& w : windows) calib.push_back(std::move(w));
  }
  return calib;
}

size_t ArgMaxRow(const nn::Tensor& logits, size_t row) {
  const float* p = logits.raw() + row * logits.dim(1);
  return static_cast<size_t>(
      std::max_element(p, p + logits.dim(1)) - p);
}

/// Ranks of one logit row (0 = largest). Distinct floats in practice, so
/// ordinal ranks are fine; exact ties would only tighten the comparison.
std::vector<size_t> RankRow(const nn::Tensor& logits, size_t row) {
  const size_t m = logits.dim(1);
  const float* p = logits.raw() + row * m;
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [p](size_t a, size_t b) { return p[a] > p[b]; });
  std::vector<size_t> rank(m);
  for (size_t i = 0; i < m; ++i) rank[order[i]] = i;
  return rank;
}

double SpearmanRho(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  KDSEL_CHECK(a.size() == b.size() && a.size() >= 2);
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d2 += d * d;
  }
  const double n = static_cast<double>(a.size());
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

void ExpectLogitsBitwiseEqual(const TrainedSelector& a,
                              const TrainedSelector& b,
                              const std::vector<std::vector<float>>& windows,
                              const std::string& what) {
  auto la = a.Logits(windows);
  auto lb = b.Logits(windows);
  ASSERT_TRUE(la.ok()) << what << ": " << la.status();
  ASSERT_TRUE(lb.ok()) << what << ": " << lb.status();
  ASSERT_EQ(la->size(), lb->size()) << what;
  for (size_t i = 0; i < la->size(); ++i) {
    ASSERT_EQ((*la)[i], (*lb)[i]) << what << " logit " << i;
  }
}

TEST(QuantizeInt8Test, RejectsEmptyCalibration) {
  auto selector = TrainFamilySelector();
  EXPECT_FALSE(selector->QuantizeInt8({}).ok());
}

TEST(QuantizeInt8Test, QuantizeLeavesOriginalUntouched) {
  auto selector = TrainFamilySelector();
  EXPECT_FALSE(selector->IsInt8());
  const auto probe = FamilyWindows(datagen::Family::kEcg, 1, 160, 9, 5);
  auto before = selector->Logits(probe);
  ASSERT_TRUE(before.ok());

  auto quantized = selector->QuantizeInt8(CalibrationWindows());
  ASSERT_TRUE(quantized.ok()) << quantized.status();
  EXPECT_TRUE((*quantized)->IsInt8());
  EXPECT_FALSE(selector->IsInt8());

  auto after = selector->Logits(probe);
  ASSERT_TRUE(after.ok());
  for (size_t i = 0; i < before->size(); ++i) {
    ASSERT_EQ((*before)[i], (*after)[i]) << "fp32 logit " << i << " changed";
  }
}

/// The per-series detector choice: plurality vote over the window-level
/// argmax rows (mirrors SelectSeriesModel; ties break to the lowest
/// class id, like std::max_element on the count array).
size_t SeriesVote(const nn::Tensor& logits) {
  std::vector<int> counts(logits.dim(1), 0);
  for (size_t r = 0; r < logits.dim(0); ++r) counts[ArgMaxRow(logits, r)]++;
  return static_cast<size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

// The acceptance bar from the quantization design: int8 inference is a
// ranking-preserving approximation. On held-out series from every
// datagen family, the int8 selector picks the same detector as fp32 for
// every series (selection is a per-series majority vote over windows),
// the per-family Spearman over the full detector ordering stays
// >= 0.99, and window-level top-1 agreement stays >= 95% overall (a
// window whose fp32 top-2 logits are a near-tie can flip under ANY
// quantization scheme; the vote absorbs those).
TEST(QuantizeInt8Test, RankingParityAcrossAllFamilies) {
  auto selector = TrainFamilySelector();
  auto quantized = selector->QuantizeInt8(CalibrationWindows());
  ASSERT_TRUE(quantized.ok()) << quantized.status();

  size_t windows_total = 0, windows_agreeing = 0;
  for (datagen::Family family : datagen::AllFamilies()) {
    double rho_sum = 0.0;
    size_t family_windows = 0;
    for (size_t s = 0; s < 2; ++s) {
      // Fresh series: different index range than training/calibration.
      const auto windows =
          FamilyWindows(family, /*num_series=*/1, /*series_length=*/192,
                        /*first_index=*/11 + s, /*seed=*/91 + s);
      ASSERT_FALSE(windows.empty());
      auto fp32 = selector->Logits(windows);
      auto int8 = (*quantized)->Logits(windows);
      ASSERT_TRUE(fp32.ok()) << fp32.status();
      ASSERT_TRUE(int8.ok()) << int8.status();
      ASSERT_EQ(fp32->shape(), int8->shape());

      EXPECT_EQ(SeriesVote(*fp32), SeriesVote(*int8))
          << datagen::FamilyName(family) << " series " << s
          << ": int8 flipped the top-1 detector selection";
      for (size_t r = 0; r < windows.size(); ++r) {
        windows_total++;
        family_windows++;
        if (ArgMaxRow(*fp32, r) == ArgMaxRow(*int8, r)) windows_agreeing++;
        rho_sum += SpearmanRho(RankRow(*fp32, r), RankRow(*int8, r));
      }
    }
    const double rho = rho_sum / static_cast<double>(family_windows);
    EXPECT_GE(rho, 0.99) << datagen::FamilyName(family)
                         << ": detector-ordering Spearman too low";
  }
  EXPECT_GE(static_cast<double>(windows_agreeing),
            0.95 * static_cast<double>(windows_total))
      << windows_agreeing << "/" << windows_total
      << " windows agree on top-1";
}

TEST(QuantizeInt8Test, SaveLoadRoundTripIsBitwise) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_quant_rt").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto selector = TrainFamilySelector();
  auto quantized = selector->QuantizeInt8(CalibrationWindows());
  ASSERT_TRUE(quantized.ok()) << quantized.status();
  const std::string prefix = dir + "/sel.int8";
  ASSERT_TRUE((*quantized)->Save(prefix).ok());

  auto loaded = TrainedSelector::Load(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE((*loaded)->IsInt8());

  const auto probe = FamilyWindows(datagen::Family::kYahoo, 2, 192, 17, 13);
  ExpectLogitsBitwiseEqual(**quantized, **loaded, probe, "save/load");

  // The fp32 original round-trips without the quant marker.
  const std::string fp32_prefix = dir + "/sel.fp32";
  ASSERT_TRUE(selector->Save(fp32_prefix).ok());
  auto fp32_loaded = TrainedSelector::Load(fp32_prefix);
  ASSERT_TRUE(fp32_loaded.ok()) << fp32_loaded.status();
  EXPECT_FALSE((*fp32_loaded)->IsInt8());
  ExpectLogitsBitwiseEqual(*selector, **fp32_loaded, probe, "fp32 save/load");
  std::filesystem::remove_all(dir);
}

TEST(QuantizeInt8Test, CloneCarriesQuantizationBitwise) {
  auto selector = TrainFamilySelector();
  auto quantized = selector->QuantizeInt8(CalibrationWindows());
  ASSERT_TRUE(quantized.ok()) << quantized.status();
  auto clone = (*quantized)->Clone();
  ASSERT_TRUE(clone.ok()) << clone.status();
  EXPECT_TRUE((*clone)->IsInt8());

  const auto probe = FamilyWindows(datagen::Family::kMgab, 2, 192, 23, 29);
  ExpectLogitsBitwiseEqual(**quantized, **clone, probe, "clone");
}

}  // namespace
}  // namespace kdsel::core
