// Tests for the shared thread-pool subsystem (common/parallel): the
// deterministic chunk-partition contract, nested-call safety, exception
// propagation, shutdown, and concurrent callers. Runs under the TSan CI
// job alongside race_stress_test.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace kdsel {
namespace {

// The global pool is process-wide state; restore the environment-derived
// size after each test so suites sharing the binary stay independent.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::ResetGlobalForTesting(0); }
};

std::vector<std::pair<size_t, size_t>> CollectChunks(ThreadPool& pool,
                                                     size_t n, size_t grain) {
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.For(n, grain, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST_F(ParallelTest, ChunkPartitionDependsOnlyOnSizeAndGrain) {
  ThreadPool serial(1);
  ThreadPool wide(8);
  for (auto [n, grain] : std::vector<std::pair<size_t, size_t>>{
           {0, 1}, {1, 1}, {7, 3}, {100, 1}, {100, 7}, {100, 1000}}) {
    const auto a = CollectChunks(serial, n, grain);
    const auto b = CollectChunks(wide, n, grain);
    EXPECT_EQ(a, b) << "n=" << n << " grain=" << grain;
    ASSERT_EQ(a.size(), ParallelChunkCount(n, grain));
    // Chunks tile [0, n) exactly.
    size_t expected_begin = 0;
    for (const auto& [begin, end] : a) {
      EXPECT_EQ(begin, expected_begin);
      EXPECT_GT(end, begin);
      expected_begin = end;
    }
    if (n > 0) {
      EXPECT_EQ(a.back().second, n);
    }
  }
}

TEST_F(ParallelTest, DisjointWritesMatchSerialReference) {
  const size_t n = 10000;
  std::vector<int> expected(n);
  for (size_t i = 0; i < n; ++i) expected[i] = static_cast<int>(i * 3 + 1);

  ThreadPool pool(4);
  std::vector<int> got(n, 0);
  pool.For(n, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) got[i] = static_cast<int>(i * 3 + 1);
  });
  EXPECT_EQ(got, expected);
}

TEST_F(ParallelTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  const size_t outer = 16, inner = 32;
  std::vector<std::atomic<int>> cells(outer * inner);
  pool.For(outer, 1, [&](size_t o_begin, size_t o_end) {
    for (size_t o = o_begin; o < o_end; ++o) {
      pool.For(inner, 4, [&](size_t i_begin, size_t i_end) {
        for (size_t i = i_begin; i < i_end; ++i) {
          cells[o * inner + i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (const auto& cell : cells) EXPECT_EQ(cell.load(), 1);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.For(100, 1,
                        [&](size_t begin, size_t) {
                          if (begin == 42) {
                            throw std::runtime_error("chunk 42 failed");
                          }
                        }),
               std::runtime_error);
  // The pool survives a failed job and keeps executing new ones.
  std::atomic<size_t> count{0};
  pool.For(100, 1, [&](size_t begin, size_t end) {
    count.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST_F(ParallelTest, ExceptionOnInlinePathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.For(10, 2, [](size_t, size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
}

TEST_F(ParallelTest, RepeatedConstructionAndShutdown) {
  for (size_t round = 0; round < 20; ++round) {
    ThreadPool pool(1 + round % 5);
    std::atomic<size_t> sum{0};
    pool.For(64, 8, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      }
    });
    EXPECT_EQ(sum.load(), 64u * 63u / 2);
    // Destructor joins all workers; leaking one would crash or hang.
  }
}

TEST_F(ParallelTest, ConcurrentCallersShareThePool) {
  ThreadPool pool(4);
  constexpr size_t kCallers = 4;
  constexpr size_t kN = 5000;
  std::vector<size_t> sums(kCallers, 0);
  {
    std::vector<std::thread> callers;  // kdsel-lint: allow(raw-thread)
    for (size_t c = 0; c < kCallers; ++c) {
      // kdsel-lint: allow(raw-thread)
      callers.emplace_back(std::thread([&pool, &sums, c] {
        std::atomic<size_t> sum{0};
        pool.For(kN, 64, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            sum.fetch_add(i, std::memory_order_relaxed);
          }
        });
        sums[c] = sum.load();
      }));
    }
    for (auto& t : callers) t.join();
  }
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c], kN * (kN - 1) / 2) << "caller " << c;
  }
}

TEST_F(ParallelTest, ResetGlobalForTestingResizesThePool) {
  ThreadPool::ResetGlobalForTesting(3);
  EXPECT_EQ(ParallelThreads(), 3u);
  std::atomic<size_t> count{0};
  ParallelFor(10, 1, [&](size_t begin, size_t end) {
    count.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10u);
  ThreadPool::ResetGlobalForTesting(1);
  EXPECT_EQ(ParallelThreads(), 1u);
}

TEST_F(ParallelTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.For(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace kdsel
