// Finite-difference gradient checks for every layer, block, and loss.
// These are the load-bearing correctness tests of the NN library: if
// Backward disagrees with the numeric derivative of Forward, training
// results are meaningless.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "selectors/backbone.h"

namespace kdsel::nn {
namespace {

constexpr double kEps = 5e-3;
constexpr double kTol = 6e-2;  // float32 + central differences

void FillRandom(Tensor& t, Rng& rng, double scale = 1.0) {
  for (float& v : t.mutable_data()) {
    v = static_cast<float>(rng.Normal(0.0, scale));
  }
}

/// Scalar objective L = sum(Forward(x) * R).
double Objective(Module& m, const Tensor& x, const Tensor& r) {
  Tensor y = m.Forward(x, /*training=*/true);
  KDSEL_CHECK(SameShape(y, r));
  double acc = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    acc += static_cast<double>(y[i]) * r[i];
  }
  return acc;
}

void ExpectClose(double analytic, double numeric, const std::string& what) {
  const double tol = kTol * std::max(0.05, std::abs(analytic) + std::abs(numeric));
  EXPECT_NEAR(analytic, numeric, tol) << what;
}

/// Verifies m.Backward against numeric input gradients and numeric
/// parameter gradients on `checks` sampled coordinates each.
void CheckGradients(Module& m, Tensor x, Rng& rng, size_t checks = 16) {
  Tensor r(m.Forward(x, true).shape());  // shape probe
  FillRandom(r, rng);

  // Analytic gradients.
  for (Parameter* p : m.Parameters()) p->ZeroGrad();
  (void)m.Forward(x, true);
  Tensor gx = m.Backward(r);
  ASSERT_TRUE(SameShape(gx, x));

  // Input gradient.
  for (size_t c = 0; c < checks; ++c) {
    size_t i = rng.Index(x.size());
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(kEps);
    xm[i] -= static_cast<float>(kEps);
    const double numeric =
        (Objective(m, xp, r) - Objective(m, xm, r)) / (2 * kEps);
    ExpectClose(gx[i], numeric, "input grad at " + std::to_string(i));
  }

  // Parameter gradients (recompute analytic after the probes, since the
  // probes above ran Forward and stale caches must not be used).
  for (Parameter* p : m.Parameters()) p->ZeroGrad();
  (void)m.Forward(x, true);
  (void)m.Backward(r);
  for (Parameter* p : m.Parameters()) {
    const size_t n_checks = std::min<size_t>(checks, p->value.size());
    for (size_t c = 0; c < n_checks; ++c) {
      size_t i = rng.Index(p->value.size());
      const float saved = p->value[i];
      const float analytic = p->grad[i];
      p->value[i] = saved + static_cast<float>(kEps);
      const double lp = Objective(m, x, r);
      p->value[i] = saved - static_cast<float>(kEps);
      const double lm = Objective(m, x, r);
      p->value[i] = saved;
      ExpectClose(analytic, (lp - lm) / (2 * kEps),
                  p->name + " grad at " + std::to_string(i));
    }
  }
}

/// Directional-derivative check for deep composite modules: compares
/// g . d against (L(x + eps d) - L(x - eps d)) / (2 eps) for random unit
/// directions d, with a relative tolerance. Robust to per-unit kink
/// noise that breaks coordinate-wise probes on deep f32 stacks.
void CheckDirectionalGradient(Module& m, Tensor x, Rng& rng,
                              size_t directions = 8) {
  Tensor r(m.Forward(x, true).shape());
  FillRandom(r, rng);
  for (Parameter* p : m.Parameters()) p->ZeroGrad();
  (void)m.Forward(x, true);
  Tensor gx = m.Backward(r);
  ASSERT_TRUE(SameShape(gx, x));

  const double eps = 1e-2;
  double sum_sq_err = 0.0, sum_sq_analytic = 0.0;
  for (size_t trial = 0; trial < directions; ++trial) {
    Tensor d(x.shape());
    FillRandom(d, rng);
    double norm = std::sqrt(d.SquaredL2Norm());
    d.ScaleInPlace(static_cast<float>(1.0 / norm));
    double analytic = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      analytic += static_cast<double>(gx[i]) * d[i];
    }
    Tensor xp = x, xm = x;
    xp.AxpyInPlace(static_cast<float>(eps), d);
    xm.AxpyInPlace(static_cast<float>(-eps), d);
    const double numeric =
        (Objective(m, xp, r) - Objective(m, xm, r)) / (2 * eps);
    sum_sq_err += (analytic - numeric) * (analytic - numeric);
    sum_sq_analytic += analytic * analytic;
  }
  // Aggregate relative RMS over all directions. Deep f32 stacks are
  // rough (ReLU/maxpool kinks, rounding), so individual probes —
  // especially in directions of tiny derivative — are noisy; but a
  // systematically wrong gradient inflates the error energy relative to
  // the gradient energy across every direction. Constituent layers are
  // verified exactly per-coordinate above; this composite check catches
  // gross plumbing errors (wrong routing, missed residual paths).
  const double rel_rms =
      std::sqrt(sum_sq_err / std::max(sum_sq_analytic, 1e-12));
  EXPECT_LT(rel_rms, 0.2) << "directional-derivative relative RMS too high";
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear layer(6, 4, rng);
  Tensor x({5, 6});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, ReLU) {
  Rng rng(2);
  ReLU layer;
  Tensor x({4, 8});
  FillRandom(x, rng);
  // Nudge values away from the kink at 0.
  for (float& v : x.mutable_data()) {
    if (std::abs(v) < 0.05f) v = 0.1f;
  }
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, Gelu) {
  Rng rng(3);
  Gelu layer;
  Tensor x({4, 8});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, Conv1d) {
  Rng rng(4);
  Conv1d layer(2, 3, 5, rng);
  Tensor x({3, 2, 12});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, Conv1dEvenKernelNoBias) {
  Rng rng(5);
  Conv1d layer(1, 2, 4, rng, /*use_bias=*/false);
  Tensor x({2, 1, 10});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, BatchNorm3d) {
  Rng rng(6);
  BatchNorm1d layer(3);
  Tensor x({4, 3, 6});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(7);
  BatchNorm1d layer(5);
  Tensor x({8, 5});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(8);
  LayerNorm layer(6);
  Tensor x({3, 4, 6});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(9);
  GlobalAvgPool1d layer;
  Tensor x({3, 4, 8});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng);
}

TEST(GradCheck, MaxPoolSame) {
  Rng rng(10);
  MaxPool1dSame layer;
  Tensor x({2, 3, 10});
  FillRandom(x, rng);
  CheckGradients(layer, x, rng, /*checks=*/8);
}

TEST(GradCheck, MultiHeadSelfAttention) {
  Rng rng(11);
  MultiHeadSelfAttention layer(8, 2, rng);
  Tensor x({2, 5, 8});
  FillRandom(x, rng, 0.5);
  CheckGradients(layer, x, rng, /*checks=*/12);
}

TEST(GradCheck, TransformerEncoderBlock) {
  Rng rng(12);
  TransformerEncoderBlock block(8, 2, 16, /*dropout_rate=*/0.0, rng);
  Tensor x({2, 4, 8});
  FillRandom(x, rng, 0.5);
  CheckGradients(block, x, rng, /*checks=*/12);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(13);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(6, 10, rng));
  seq.Add(std::make_unique<ReLU>());
  seq.Add(std::make_unique<Linear>(10, 3, rng));
  Tensor x({4, 6});
  FillRandom(x, rng);
  CheckGradients(seq, x, rng);
}

TEST(GradCheck, ResidualBlockSameChannels) {
  Rng rng(14);
  selectors::ResidualBlock block(3, 3, rng);
  Tensor x({2, 3, 10});
  FillRandom(x, rng, 0.5);
  CheckDirectionalGradient(block, x, rng);
}

TEST(GradCheck, ResidualBlockProjected) {
  Rng rng(15);
  selectors::ResidualBlock block(2, 4, rng);
  Tensor x({2, 2, 10});
  FillRandom(x, rng, 0.5);
  CheckDirectionalGradient(block, x, rng);
}

TEST(GradCheck, InceptionModule) {
  Rng rng(16);
  selectors::InceptionModule module(2, 3, 3, rng);
  Tensor x({2, 2, 26});
  FillRandom(x, rng, 0.5);
  CheckDirectionalGradient(module, x, rng);
}

/// Backbone gradient smoke checks, parameterized by architecture.
/// Deep f32 stacks with ReLU/maxpool kinks make per-coordinate finite
/// differences too noisy, so composites are verified with directional
/// derivatives (the kink and rounding errors of individual units wash
/// out against the aggregate gradient).
class BackboneGradTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BackboneGradTest, DirectionalDerivativeMatches) {
  Rng rng(17);
  auto backbone = selectors::BuildBackbone(GetParam(), 16, rng);
  ASSERT_TRUE(backbone.ok());
  Tensor x({3, 16});
  FillRandom(x, rng, 0.5);
  if (GetParam() == "Transformer") {
    // The factory Transformer trains with dropout, which randomizes the
    // objective between probes; check a dropout-free instance instead.
    selectors::TransformerBackbone::Options opts;
    opts.patch_size = 4;
    opts.dropout = 0.0;
    selectors::TransformerBackbone deterministic(16, opts, rng);
    CheckDirectionalGradient(deterministic, x, rng);
  } else {
    CheckDirectionalGradient(**backbone, x, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, BackboneGradTest,
                         ::testing::ValuesIn(selectors::BackboneNames()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------- Losses

TEST(LossGradCheck, HardCrossEntropy) {
  Rng rng(20);
  Tensor logits({5, 4});
  FillRandom(logits, rng);
  std::vector<int> labels{0, 3, 1, 2, 3};
  std::vector<float> weights{1.0f, 2.0f, 0.5f, 1.0f, 1.5f};
  LossResult res = SoftmaxCrossEntropyHard(logits, labels, weights);
  for (int c = 0; c < 20; ++c) {
    size_t i = rng.Index(logits.size());
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(kEps);
    lm[i] -= static_cast<float>(kEps);
    const double numeric =
        (SoftmaxCrossEntropyHard(lp, labels, weights).mean_loss -
         SoftmaxCrossEntropyHard(lm, labels, weights).mean_loss) /
        (2 * kEps);
    ExpectClose(res.grad[i], numeric, "CE grad");
  }
}

TEST(LossGradCheck, SoftCrossEntropy) {
  Rng rng(21);
  Tensor logits({4, 3});
  FillRandom(logits, rng);
  Tensor targets({4, 3});
  for (size_t i = 0; i < 4; ++i) {
    double sum = 0;
    for (size_t j = 0; j < 3; ++j) {
      targets.At(i, j) = static_cast<float>(rng.Uniform(0.1, 1.0));
      sum += targets.At(i, j);
    }
    for (size_t j = 0; j < 3; ++j) {
      targets.At(i, j) = static_cast<float>(targets.At(i, j) / sum);
    }
  }
  LossResult res = SoftmaxCrossEntropySoft(logits, targets, {});
  for (int c = 0; c < 15; ++c) {
    size_t i = rng.Index(logits.size());
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(kEps);
    lm[i] -= static_cast<float>(kEps);
    const double numeric =
        (SoftmaxCrossEntropySoft(lp, targets, {}).mean_loss -
         SoftmaxCrossEntropySoft(lm, targets, {}).mean_loss) /
        (2 * kEps);
    ExpectClose(res.grad[i], numeric, "soft CE grad");
  }
}

TEST(LossGradCheck, InfoNceBothViews) {
  Rng rng(22);
  Tensor a({6, 5}), b({6, 5});
  FillRandom(a, rng);
  FillRandom(b, rng);
  std::vector<float> weights{1.0f, 0.5f, 2.0f, 1.0f, 1.0f, 1.5f};
  InfoNceResult res = InfoNce(a, b, 0.2, weights);
  for (int c = 0; c < 15; ++c) {
    size_t i = rng.Index(a.size());
    Tensor ap = a, am = a;
    ap[i] += static_cast<float>(kEps);
    am[i] -= static_cast<float>(kEps);
    const double numeric = (InfoNce(ap, b, 0.2, weights).mean_loss -
                            InfoNce(am, b, 0.2, weights).mean_loss) /
                           (2 * kEps);
    ExpectClose(res.grad_a[i], numeric, "InfoNCE grad_a");
  }
  for (int c = 0; c < 15; ++c) {
    size_t i = rng.Index(b.size());
    Tensor bp = b, bm = b;
    bp[i] += static_cast<float>(kEps);
    bm[i] -= static_cast<float>(kEps);
    const double numeric = (InfoNce(a, bp, 0.2, weights).mean_loss -
                            InfoNce(a, bm, 0.2, weights).mean_loss) /
                           (2 * kEps);
    ExpectClose(res.grad_b[i], numeric, "InfoNCE grad_b");
  }
}

TEST(LossTest, HardCrossEntropyKnownValue) {
  // Uniform logits over 4 classes: loss = log 4 for every sample.
  Tensor logits({2, 4});
  LossResult res = SoftmaxCrossEntropyHard(logits, {1, 2}, {});
  EXPECT_NEAR(res.mean_loss, std::log(4.0), 1e-5);
  EXPECT_NEAR(res.per_sample[0], std::log(4.0), 1e-5);
}

TEST(LossTest, SoftCrossEntropyMatchesHardOnOneHot) {
  Rng rng(23);
  Tensor logits({3, 5});
  FillRandom(logits, rng);
  std::vector<int> labels{4, 0, 2};
  Tensor onehot({3, 5});
  for (size_t i = 0; i < 3; ++i) {
    onehot.At(i, static_cast<size_t>(labels[i])) = 1.0f;
  }
  LossResult hard = SoftmaxCrossEntropyHard(logits, labels, {});
  LossResult soft = SoftmaxCrossEntropySoft(logits, onehot, {});
  EXPECT_NEAR(hard.mean_loss, soft.mean_loss, 1e-5);
  for (size_t i = 0; i < hard.grad.size(); ++i) {
    EXPECT_NEAR(hard.grad[i], soft.grad[i], 1e-6);
  }
}

TEST(LossTest, InfoNceAlignedViewsScoreLowerThanMisaligned) {
  Rng rng(24);
  Tensor a({8, 6});
  FillRandom(a, rng);
  Tensor b = a;  // perfectly aligned views
  InfoNceResult aligned = InfoNce(a, b, 0.1, {});
  Tensor shuffled({8, 6});
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      shuffled.At(i, j) = a.At((i + 3) % 8, j);
    }
  }
  InfoNceResult misaligned = InfoNce(a, shuffled, 0.1, {});
  EXPECT_LT(aligned.mean_loss, misaligned.mean_loss);
}

TEST(LossGradCheck, InfoNceWithGroupMasking) {
  Rng rng(26);
  Tensor a({6, 4}), b({6, 4});
  FillRandom(a, rng);
  FillRandom(b, rng);
  // Samples 0/1 and 2/3 share groups (duplicated texts).
  std::vector<size_t> groups{0, 0, 1, 1, 2, 3};
  InfoNceResult res = InfoNce(a, b, 0.2, {}, groups);
  for (int c = 0; c < 12; ++c) {
    size_t i = rng.Index(a.size());
    Tensor ap = a, am = a;
    ap[i] += static_cast<float>(kEps);
    am[i] -= static_cast<float>(kEps);
    const double numeric = (InfoNce(ap, b, 0.2, {}, groups).mean_loss -
                            InfoNce(am, b, 0.2, {}, groups).mean_loss) /
                           (2 * kEps);
    ExpectClose(res.grad_a[i], numeric, "masked InfoNCE grad_a");
  }
}

TEST(LossTest, GroupMaskingRemovesFalseNegativePenalty) {
  // Two samples share an identical b-view (same text). Without masking
  // they are each other's hardest negatives; with masking the pair is
  // excluded and the loss drops.
  Rng rng(27);
  Tensor a({4, 8});
  FillRandom(a, rng);
  Tensor b = a;
  // Rows 0 and 1 of b identical (duplicated text).
  for (size_t j = 0; j < 8; ++j) b.At(1, j) = b.At(0, j);
  InfoNceResult unmasked = InfoNce(a, b, 0.1, {});
  InfoNceResult masked = InfoNce(a, b, 0.1, {}, {0, 0, 1, 2});
  EXPECT_LT(masked.mean_loss, unmasked.mean_loss);
}

TEST(LossTest, EmptyGroupsMatchesUnmasked) {
  Rng rng(28);
  Tensor a({5, 6}), b({5, 6});
  FillRandom(a, rng);
  FillRandom(b, rng);
  std::vector<size_t> distinct{0, 1, 2, 3, 4};
  InfoNceResult plain = InfoNce(a, b, 0.2, {});
  InfoNceResult grouped = InfoNce(a, b, 0.2, {}, distinct);
  EXPECT_NEAR(plain.mean_loss, grouped.mean_loss, 1e-6);
}

TEST(LossTest, WeightsScaleObjective) {
  Rng rng(25);
  Tensor logits({4, 3});
  FillRandom(logits, rng);
  std::vector<int> labels{0, 1, 2, 0};
  LossResult base = SoftmaxCrossEntropyHard(logits, labels, {});
  LossResult doubled =
      SoftmaxCrossEntropyHard(logits, labels, {2, 2, 2, 2});
  EXPECT_NEAR(doubled.mean_loss, 2 * base.mean_loss, 1e-5);
  for (size_t i = 0; i < base.grad.size(); ++i) {
    EXPECT_NEAR(doubled.grad[i], 2 * base.grad[i], 1e-6);
  }
  // per_sample stays unweighted (used for pruning statistics).
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(doubled.per_sample[i], base.per_sample[i], 1e-6);
  }
}

}  // namespace
}  // namespace kdsel::nn
