#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/families.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/stats.h"

namespace kdsel::serve {
namespace {

/// Trains a small ConvNet selector on separable synthetic windows.
std::unique_ptr<core::TrainedSelector> TrainTinySelector(
    size_t num_classes = 2, uint64_t seed = 1) {
  core::SelectorTrainingData data;
  data.num_classes = num_classes;
  Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    const int c = i % static_cast<int>(num_classes);
    std::vector<float> w(16);
    for (size_t t = 0; t < 16; ++t) {
      w[t] = std::sin((0.3 + 0.9 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = seed;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

/// Calibration windows matching the TrainTinySelector input recipe.
std::vector<std::vector<float>> TinyCalibrationWindows(uint64_t seed = 4) {
  Rng rng(seed);
  std::vector<std::vector<float>> windows;
  for (int i = 0; i < 8; ++i) {
    std::vector<float> w(16);
    for (size_t t = 0; t < 16; ++t) {
      w[t] = std::sin((0.3 + 0.9 * (i % 2)) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    windows.push_back(std::move(w));
  }
  return windows;
}

std::vector<ts::TimeSeries> MakeLabeledSeries(size_t count, uint64_t seed) {
  std::vector<ts::TimeSeries> series;
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    auto family =
        (i % 2 == 0) ? datagen::Family::kYahoo : datagen::Family::kEcg;
    auto s = datagen::GenerateSeries(family, 320, i, rng);
    KDSEL_CHECK(s.ok());
    series.push_back(std::move(s).value());
  }
  return series;
}

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      R"({"op":"select","id":7,"values":[1,-2.5,3e2],"nested":{"a":[true,false,null]},"s":"q\"\\\nA"})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("op", ""), "select");
  EXPECT_EQ(parsed->GetNumber("id", -1), 7);
  const Json* values = parsed->Find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->items().size(), 3u);
  EXPECT_FLOAT_EQ(static_cast<float>(values->items()[1].as_number()), -2.5f);
  EXPECT_EQ(parsed->GetString("s", ""), "q\"\\\nA");

  auto reparsed = Json::Parse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->Dump(), parsed->Dump());
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const std::string bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\":1} x", "nul", "\"unterminated",
        "{\"a\":1e999}", "[1 2]"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

TEST(LatencyHistogramTest, PercentilesRoughlyCorrect) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  auto s = h.Summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  // Geometric buckets (2^(1/4) growth) bound relative error at ~19%.
  EXPECT_GT(s.p50, 500.0 * 0.8);
  EXPECT_LT(s.p50, 500.0 * 1.25);
  EXPECT_GT(s.p95, 950.0 * 0.8);
  EXPECT_LE(s.p99, 1000.0);
  EXPECT_GE(s.p99, 990.0 * 0.8);

  h.Reset();
  EXPECT_EQ(h.Summarize().count, 0u);
}

TEST(LatencyHistogramTest, ConcurrentRecordIsConsistent) {
  LatencyHistogram h;
  // Raw threads on purpose: these tests exercise the serving layer
  // under genuinely concurrent clients, outside the shared pool.
  std::vector<std::thread> threads;  // kdsel-lint: allow(raw-thread)
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 2500; ++i) h.Record(100.0);
    });
  }
  for (auto& t : threads) t.join();
  auto s = h.Summarize();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_DOUBLE_EQ(s.min, 100.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(SelectorRegistryTest, RegisterGetEvictVersions) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_reg_none"));
  EXPECT_FALSE(registry.Get("missing").ok());
  EXPECT_FALSE(registry.Register("", TrainTinySelector()).ok());
  EXPECT_FALSE(registry.Register("x", nullptr).ok());

  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());
  auto first = registry.Get("tiny");
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->selector, nullptr);
  EXPECT_EQ(first->selector->num_classes(), 2u);

  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());
  auto second = registry.Get("tiny");
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->version, first->version);

  EXPECT_EQ(registry.ResidentNames(), std::vector<std::string>{"tiny"});
  EXPECT_TRUE(registry.Evict("tiny"));
  EXPECT_FALSE(registry.Evict("tiny"));
  EXPECT_FALSE(registry.Get("tiny").ok());
}

TEST(SelectorRegistryTest, LoadsAndHotReloadsFromDisk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_reg_disk").string();
  std::filesystem::remove_all(dir);
  core::SelectorManager manager(dir);
  auto trained = TrainTinySelector();
  ASSERT_TRUE(manager.Save(*trained, "ondisk").ok());

  SelectorRegistry registry{core::SelectorManager(dir)};
  // Not resident yet; GetOrLoad pulls it from disk.
  EXPECT_FALSE(registry.Get("ondisk").ok());
  auto snapshot = registry.GetOrLoad("ondisk");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  const uint64_t v1 = snapshot->version;

  ASSERT_TRUE(registry.ReloadAll().ok());
  auto reloaded = registry.Get("ondisk");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_GT(reloaded->version, v1);
  // Old snapshot stays valid after the swap (in-flight requests).
  auto preds_old = snapshot->selector->Predict({std::vector<float>(16, 0.5f)});
  auto preds_new = reloaded->selector->Predict({std::vector<float>(16, 0.5f)});
  ASSERT_TRUE(preds_old.ok() && preds_new.ok());
  EXPECT_EQ(*preds_old, *preds_new);
  std::filesystem::remove_all(dir);
}

TEST(TrainedSelectorCloneTest, ClonePredictsIdentically) {
  auto original = TrainTinySelector();
  auto clone = original->Clone();
  ASSERT_TRUE(clone.ok()) << clone.status();
  std::vector<std::vector<float>> windows;
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    std::vector<float> w(16);
    for (auto& v : w) v = static_cast<float>(rng.Normal());
    windows.push_back(std::move(w));
  }
  auto a = original->Predict(windows);
  auto b = (*clone)->Predict(windows);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(InferenceServerTest, RejectsBadConfigAndUse) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_srv_none"));
  {
    InferenceServer server(&registry, ServerOptions{});
    // Not started: submissions are refused.
    SelectRequest request;
    request.selector = "tiny";
    request.series = ts::TimeSeries("x", std::vector<float>(32, 0.0f));
    EXPECT_FALSE(server.Submit(std::move(request)).ok());
  }
  {
    ServerOptions bad;
    bad.num_workers = 0;
    InferenceServer server(&registry, bad);
    EXPECT_FALSE(server.Start().ok());
  }
  {
    InferenceServer server(&registry, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    SelectRequest request;  // Empty selector name.
    request.series = ts::TimeSeries("x", std::vector<float>(32, 0.0f));
    EXPECT_FALSE(server.Submit(std::move(request)).ok());
    // Unknown selector: accepted, resolves to NotFound.
    SelectRequest unknown;
    unknown.selector = "ghost";
    unknown.series = ts::TimeSeries("x", std::vector<float>(32, 0.0f));
    auto response = server.Run(std::move(unknown));
    EXPECT_FALSE(response.ok());
    server.Stop();
    EXPECT_EQ(server.stats().failed(), 1u);
  }
}

TEST(InferenceServerTest, MatchesSequentialPipelineByteForByte) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_srv_none"));
  auto trained = TrainTinySelector();
  auto reference_selector = trained->Clone();
  ASSERT_TRUE(reference_selector.ok());
  ASSERT_TRUE(registry.Register("tiny", std::move(trained)).ok());

  ServerOptions opts;
  opts.num_workers = 4;
  opts.max_batch = 8;
  opts.max_delay_us = 500;
  opts.detector_seed = 42;
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  const auto series = MakeLabeledSeries(6, 11);
  // Sequential reference: the exact offline pipeline on the same models.
  auto models = tsad::BuildDefaultModelSet(opts.detector_seed);
  ts::WindowOptions wo;
  wo.length = (*reference_selector)->input_length();
  wo.stride = wo.length;
  std::vector<core::DetectionResult> reference;
  for (const auto& s : series) {
    auto r = core::DetectWithSelection(**reference_selector, models, s, wo);
    ASSERT_TRUE(r.ok()) << r.status();
    reference.push_back(std::move(r).value());
  }

  // 64 concurrent requests from 8 client threads.
  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 8;
  std::vector<std::thread> clients;  // kdsel-lint: allow(raw-thread)
  std::atomic<int> mismatches{0}, failures{0};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kPerClient; ++r) {
        const size_t idx = (c * kPerClient + r) % series.size();
        SelectRequest request;
        request.selector = "tiny";
        request.series = series[idx];
        auto response = server.Run(std::move(request));
        if (!response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const core::DetectionResult& expected = reference[idx];
        if (response->result.selected_model != expected.selected_model ||
            response->result.votes != expected.votes ||
            response->result.model_name != expected.model_name ||
            response->result.anomaly_scores != expected.anomaly_scores ||
            response->result.auc_pr != expected.auc_pr) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().submitted(), kClients * kPerClient);
  EXPECT_EQ(server.stats().completed(), kClients * kPerClient);
  EXPECT_EQ(server.stats().failed(), 0u);
  EXPECT_GE(server.stats().batches(), 1u);
  auto detect_summary =
      server.stats().endpoint(ServerStats::Endpoint::kDetect).total.Summarize();
  EXPECT_EQ(detect_summary.count, kClients * kPerClient);
  EXPECT_GT(detect_summary.p99, 0.0);
}

TEST(InferenceServerTest, HotReloadDuringInFlightRequestsIsRaceFree) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_srv_none"));
  auto trained = TrainTinySelector();
  auto reference_selector = trained->Clone();
  ASSERT_TRUE(reference_selector.ok());
  ASSERT_TRUE(registry.Register("tiny", std::move(trained)).ok());

  ServerOptions opts;
  opts.num_workers = 4;
  opts.max_batch = 4;
  opts.max_delay_us = 200;
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  const auto series = MakeLabeledSeries(4, 21);
  std::vector<std::vector<int>> reference_votes;
  {
    auto models = tsad::BuildDefaultModelSet(opts.detector_seed);
    ts::WindowOptions wo;
    wo.length = (*reference_selector)->input_length();
    wo.stride = wo.length;
    for (const auto& s : series) {
      auto sel = core::SelectSeriesModel(**reference_selector, s, wo,
                                         models.size());
      ASSERT_TRUE(sel.ok());
      reference_votes.push_back(sel->votes);
    }
  }

  std::atomic<bool> stop_reloading{false};
  // Reloader: keeps swapping in new snapshots (same weights, so results
  // must stay stable) while clients hammer the server.
  std::thread reloader([&] {  // kdsel-lint: allow(raw-thread)
    while (!stop_reloading.load()) {
      auto snapshot = registry.Get("tiny");
      ASSERT_TRUE(snapshot.ok());
      auto clone = snapshot->selector->Clone();
      ASSERT_TRUE(clone.ok());
      ASSERT_TRUE(registry.Register("tiny", std::move(clone).value()).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 8;
  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> clients;  // kdsel-lint: allow(raw-thread)
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kPerClient; ++r) {
        const size_t idx = (c + r) % series.size();
        SelectRequest request;
        request.selector = "tiny";
        request.series = series[idx];
        request.run_detection = false;  // Selection-only: exercises batching.
        auto response = server.Run(std::move(request));
        if (!response.ok()) {
          failures.fetch_add(1);
        } else if (response->result.votes != reference_votes[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop_reloading.store(true);
  reloader.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().completed(), kClients * kPerClient);
}

TEST(InferenceServerTest, MicroBatchesGroupConcurrentRequests) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_srv_none"));
  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());

  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  opts.max_delay_us = 200000;  // Generous: flush happens via max_batch.
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  ts::TimeSeries series("s", std::vector<float>(64, 0.0f));
  for (size_t i = 0; i < series.length(); ++i) {
    series.mutable_values()[i] = std::sin(0.4 * static_cast<double>(i));
  }
  std::vector<std::future<StatusOr<SelectResponse>>> futures;
  for (int i = 0; i < 4; ++i) {
    SelectRequest request;
    request.selector = "tiny";
    request.series = series;
    request.run_detection = false;
    auto submitted = server.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) {
    auto response = f.get();
    ASSERT_TRUE(response.ok()) << response.status();
    // All four submissions landed before the (200 ms) delay flush, so
    // they must have been served as one batch of max_batch = 4.
    EXPECT_EQ(response->timing.batch_size, 4u);
    EXPECT_EQ(response->num_windows, 4u);  // 64-point series, window 16.
    EXPECT_FALSE(response->result.model_name.empty());
    EXPECT_TRUE(response->result.anomaly_scores.empty());
  }
  server.Stop();
  EXPECT_DOUBLE_EQ(server.stats().MeanBatchSize(), 4.0);

  // Stats JSON snapshot is parseable and carries the counters.
  auto stats_json = Json::Parse(server.stats().ToJsonString());
  ASSERT_TRUE(stats_json.ok()) << stats_json.status();
  EXPECT_EQ(stats_json->GetNumber("completed", -1), 4.0);
  const Json* endpoints = stats_json->Find("endpoints");
  ASSERT_NE(endpoints, nullptr);
  const Json* select_ep = endpoints->Find("select");
  ASSERT_NE(select_ep, nullptr);
  EXPECT_EQ(select_ep->GetNumber("completed", -1), 4.0);
}

TEST(ProtocolTest, ParseRequestLineValidatesInput) {
  auto ok = ParseRequestLine(
      R"({"op":"select","id":3,"selector":"s","values":[1,2,3],"labels":[0,0,1],"detect":false,"scores":true})");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->op, WireRequest::Op::kSelect);
  EXPECT_EQ(ok->id, 3);
  EXPECT_EQ(ok->selector, "s");
  EXPECT_FALSE(ok->detect);
  EXPECT_TRUE(ok->want_scores);
  EXPECT_EQ(ok->series.length(), 3u);
  EXPECT_TRUE(ok->series.has_labels());

  EXPECT_FALSE(ParseRequestLine("not json").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"explode"})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"select","selector":"s"})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"select","values":[1,2]})").ok());
  EXPECT_FALSE(ParseRequestLine(
                   R"({"op":"select","selector":"s","values":[1,"x"]})")
                   .ok());
  // Labels/values length mismatch is rejected by TimeSeries::SetLabels.
  EXPECT_FALSE(
      ParseRequestLine(
          R"({"op":"select","selector":"s","values":[1,2],"labels":[1]})")
          .ok());
}

TEST(ProtocolTest, NdjsonSessionEndToEnd) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_proto_dir").string();
  std::filesystem::remove_all(dir);
  core::SelectorManager manager(dir);
  auto trained = TrainTinySelector();
  ASSERT_TRUE(manager.Save(*trained, "tiny").ok());

  SelectorRegistry registry{core::SelectorManager(dir)};
  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  opts.max_delay_us = 500;
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  std::string values = "[";
  for (int i = 0; i < 64; ++i) {
    if (i) values += ",";
    values += std::to_string(i);
  }
  values += "]";

  std::istringstream in(
      R"({"op":"list","id":1})"
      "\n"
      R"({"op":"select","id":2,"selector":"tiny","values":)" +
      values +
      R"(,"detect":false})"
      "\n"
      R"({"op":"reload","id":3,"selector":"tiny"})"
      "\n"
      R"({"op":"reload","id":4,"selector":"ghost"})"
      "\n"
      "this is not json\n"
      R"({"op":"stats","id":5})"
      "\n"
      R"({"op":"quit"})"
      "\n");
  std::ostringstream out;
  ASSERT_TRUE(RunServeLoop(in, out, server).ok());
  server.Stop();

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);

  auto list_reply = Json::Parse(lines[0]);
  ASSERT_TRUE(list_reply.ok());
  EXPECT_EQ(list_reply->GetNumber("id", -1), 1.0);
  EXPECT_TRUE(list_reply->GetBool("ok", false));
  const Json* on_disk = list_reply->Find("on_disk");
  ASSERT_NE(on_disk, nullptr);
  ASSERT_EQ(on_disk->items().size(), 1u);
  EXPECT_EQ(on_disk->items()[0].as_string(), "tiny");

  auto select_reply = Json::Parse(lines[1]);
  ASSERT_TRUE(select_reply.ok());
  EXPECT_EQ(select_reply->GetNumber("id", -1), 2.0);
  EXPECT_TRUE(select_reply->GetBool("ok", false));
  EXPECT_EQ(select_reply->GetNumber("num_windows", -1), 4.0);
  EXPECT_GE(select_reply->GetNumber("batch_size", -1), 1.0);

  auto reload_reply = Json::Parse(lines[2]);
  ASSERT_TRUE(reload_reply.ok());
  EXPECT_TRUE(reload_reply->GetBool("ok", false));

  auto ghost_reply = Json::Parse(lines[3]);
  ASSERT_TRUE(ghost_reply.ok());
  EXPECT_FALSE(ghost_reply->GetBool("ok", true));

  auto bad_reply = Json::Parse(lines[4]);
  ASSERT_TRUE(bad_reply.ok());
  EXPECT_FALSE(bad_reply->GetBool("ok", true));

  auto stats_reply = Json::Parse(lines[5]);
  ASSERT_TRUE(stats_reply.ok());
  const Json* stats = stats_reply->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->GetNumber("completed", -1), 1.0);
  std::filesystem::remove_all(dir);
}

// Malformed input must not end the session, and the error reply must
// carry the best id the parser could recover: -1 for non-JSON garbage,
// the request's own id when the line was a well-formed JSON object that
// failed validation.
TEST(InferenceServerTest, ServeLoopRecoversIdsFromMalformedLines) {
  SelectorRegistry registry(core::SelectorManager("/tmp/kdsel_srv_badid"));
  ASSERT_TRUE(registry.Register("tiny", TrainTinySelector()).ok());
  ServerOptions opts;
  opts.num_workers = 2;
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  std::string values = "[";
  for (int i = 0; i < 16; ++i) {
    if (i) values += ",";
    values += std::to_string(std::sin(0.3 * static_cast<double>(i)));
  }
  values += "]";

  std::istringstream in(
      std::string("not json at all\n") +                         // -> id -1
      R"({"op":"select","id":41,"selector":"tiny","values":[]})" // -> id 41
      "\n"
      R"({"op":"frobnicate","id":42})"                          // -> id 42
      "\n" +
      R"({"op":"select","id":43,"selector":"tiny","values":)" + values +
      R"(,"detect":false})"
      "\n"
      R"({"op":"quit"})"
      "\n");
  std::ostringstream out;
  ASSERT_TRUE(RunServeLoop(in, out, server).ok());
  server.Stop();

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);

  auto garbage = Json::Parse(lines[0]);
  ASSERT_TRUE(garbage.ok());
  EXPECT_FALSE(garbage->GetBool("ok", true));
  EXPECT_EQ(garbage->GetNumber("id", 0), -1.0);

  auto empty_values = Json::Parse(lines[1]);
  ASSERT_TRUE(empty_values.ok());
  EXPECT_FALSE(empty_values->GetBool("ok", true));
  EXPECT_EQ(empty_values->GetNumber("id", 0), 41.0);

  auto bad_op = Json::Parse(lines[2]);
  ASSERT_TRUE(bad_op.ok());
  EXPECT_FALSE(bad_op->GetBool("ok", true));
  EXPECT_EQ(bad_op->GetNumber("id", 0), 42.0);

  // The session survived all three and still serves real requests.
  auto good = Json::Parse(lines[3]);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->GetBool("ok", false)) << lines[3];
  EXPECT_EQ(good->GetNumber("id", 0), 43.0);
}

// A/B serving: fp32 under "tiny" and its quantized sibling under
// "tiny.int8" live in the registry at once. The wire protocol routes via
// the optional "variant" field, the int8 entry hot-reloads while fp32
// keeps serving, and the stats reply attributes requests per variant.
TEST(InferenceServerTest, ServesFp32AndInt8VariantsSideBySide) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_srv_int8").string();
  std::filesystem::remove_all(dir);
  core::SelectorManager manager(dir);
  auto trained = TrainTinySelector();
  auto quantized = trained->QuantizeInt8(TinyCalibrationWindows());
  ASSERT_TRUE(quantized.ok()) << quantized.status();
  ASSERT_TRUE((*quantized)->IsInt8());
  ASSERT_TRUE(manager.Save(*trained, "tiny").ok());
  ASSERT_TRUE(manager.Save(**quantized, "tiny.int8").ok());

  SelectorRegistry registry{core::SelectorManager(dir)};
  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  opts.max_delay_us = 500;
  InferenceServer server(&registry, opts);
  ASSERT_TRUE(server.Start().ok());

  std::string values = "[";
  for (int i = 0; i < 64; ++i) {
    if (i) values += ",";
    values += std::to_string(std::sin(0.4 * static_cast<double>(i)));
  }
  values += "]";
  const std::string base =
      R"("selector":"tiny","values":)" + values + R"(,"detect":false)";

  std::istringstream in(
      R"({"op":"select","id":1,)" + base + "}\n" +
      R"({"op":"select","id":2,"variant":"int8",)" + base + "}\n" +
      R"({"op":"select","id":3,"variant":"fp32",)" + base + "}\n" +
      R"({"op":"select","id":4,"variant":"int4",)" + base + "}\n" +
      R"({"op":"reload","id":5,"selector":"tiny.int8"})" "\n" +
      R"({"op":"stats","id":6})" "\n" +
      R"({"op":"quit"})" "\n");
  std::ostringstream out;
  ASSERT_TRUE(RunServeLoop(in, out, server).ok());
  server.Stop();

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);

  // Default, explicit-fp32 and int8 routes all serve successfully.
  for (int i : {0, 1, 2}) {
    auto reply = Json::Parse(lines[static_cast<size_t>(i)]);
    ASSERT_TRUE(reply.ok()) << lines[static_cast<size_t>(i)];
    EXPECT_TRUE(reply->GetBool("ok", false)) << lines[static_cast<size_t>(i)];
    EXPECT_FALSE(reply->GetString("model", "").empty());
  }
  // Unknown variant is rejected at parse time, not served as fp32.
  auto bad_variant = Json::Parse(lines[3]);
  ASSERT_TRUE(bad_variant.ok());
  EXPECT_FALSE(bad_variant->GetBool("ok", true));
  EXPECT_NE(bad_variant->GetString("error", "").find("variant"),
            std::string::npos);
  // The int8 entry hot-reloads independently of the serving fp32 entry.
  auto reload_reply = Json::Parse(lines[4]);
  ASSERT_TRUE(reload_reply.ok());
  EXPECT_TRUE(reload_reply->GetBool("ok", false)) << lines[4];

  // Per-variant attribution: 2 fp32 selects (default + explicit), 1 int8.
  EXPECT_EQ(server.stats().fp32_requests(), 2u);
  EXPECT_EQ(server.stats().int8_requests(), 1u);
  auto stats_reply = Json::Parse(lines[5]);
  ASSERT_TRUE(stats_reply.ok());
  const Json* stats = stats_reply->Find("stats");
  ASSERT_NE(stats, nullptr);
  const Json* variants = stats->Find("variants");
  ASSERT_NE(variants, nullptr);
  EXPECT_EQ(variants->GetNumber("fp32", -1), 2.0);
  EXPECT_EQ(variants->GetNumber("int8", -1), 1.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kdsel::serve
