#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "nn/layers.h"
#include "nn/serialize.h"

namespace kdsel {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  auto dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

std::unique_ptr<core::TrainedSelector> TrainTinySelector() {
  core::SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const int c = i % 2;
    std::vector<float> w(16);
    for (size_t t = 0; t < 16; ++t) {
      w[t] = std::sin((0.25 + 0.75 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 1;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

class SelectorManagerFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("kdsel_load_failure");
    manager_ = std::make_unique<core::SelectorManager>(dir_);
    auto trained = TrainTinySelector();
    ASSERT_TRUE(manager_->Save(*trained, "good").ok());
    meta_path_ = dir_ + "/good.meta";
    weights_path_ = dir_ + "/good.weights";
    ASSERT_TRUE(fs::exists(meta_path_));
    ASSERT_TRUE(fs::exists(weights_path_));
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<core::SelectorManager> manager_;
  std::string meta_path_;
  std::string weights_path_;
};

TEST_F(SelectorManagerFailureTest, IntactSelectorLoads) {
  auto loaded = manager_->Load("good");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->num_classes(), 2u);
  EXPECT_EQ((*loaded)->input_length(), 16u);
}

TEST_F(SelectorManagerFailureTest, MissingNameReturnsError) {
  auto loaded = manager_->Load("does_not_exist");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SelectorManagerFailureTest, TruncatedWeightsReturnsError) {
  const std::string payload = ReadFile(weights_path_);
  ASSERT_GT(payload.size(), 16u);
  // Chop the payload at several points, including mid-header and
  // mid-tensor; every truncation must fail cleanly.
  for (const size_t keep :
       {size_t{0}, size_t{2}, size_t{9}, payload.size() / 2,
        payload.size() - 1}) {
    WriteFile(weights_path_, payload.substr(0, keep));
    auto loaded = manager_->Load("good");
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(SelectorManagerFailureTest, CorruptedMagicReturnsError) {
  std::string payload = ReadFile(weights_path_);
  ASSERT_GT(payload.size(), 4u);
  payload[0] = 'X';
  payload[1] = 'Y';
  WriteFile(weights_path_, payload);
  EXPECT_FALSE(manager_->Load("good").ok());
}

TEST_F(SelectorManagerFailureTest, ArchitectureMismatchReturnsError) {
  // The weights on disk are for a ConvNet backbone; claiming a different
  // architecture in the metadata must be rejected at load time.
  WriteFile(meta_path_,
            "backbone=ResNet\ninput_length=16\nnum_classes=2\n"
            "display_name=good\n");
  EXPECT_FALSE(manager_->Load("good").ok());
  // Unknown architectures are rejected as well.
  WriteFile(meta_path_,
            "backbone=NoSuchNet\ninput_length=16\nnum_classes=2\n"
            "display_name=good\n");
  EXPECT_FALSE(manager_->Load("good").ok());
}

TEST_F(SelectorManagerFailureTest, ClassCountMismatchReturnsError) {
  // Classifier head shape no longer matches the stored tensors.
  WriteFile(meta_path_,
            "backbone=ConvNet\ninput_length=16\nnum_classes=5\n"
            "display_name=good\n");
  EXPECT_FALSE(manager_->Load("good").ok());
}

TEST_F(SelectorManagerFailureTest, MalformedMetaReturnsError) {
  WriteFile(meta_path_, "");
  EXPECT_FALSE(manager_->Load("good").ok());
  WriteFile(meta_path_, "backbone=ConvNet\ninput_length=banana\n");
  EXPECT_FALSE(manager_->Load("good").ok());
}

TEST(LoadModuleFailureTest, MissingFileReturnsError) {
  Rng rng(1);
  nn::Linear layer(4, 2, rng);
  EXPECT_FALSE(
      nn::LoadModule(layer, "/tmp/kdsel_no_such_dir/no_such_file.bin").ok());
}

TEST(LoadModuleFailureTest, ShapeMismatchReturnsError) {
  const std::string dir = TempDir("kdsel_module_shape");
  const std::string path = dir + "/linear.bin";
  Rng rng(1);
  nn::Linear saved(4, 2, rng);
  ASSERT_TRUE(nn::SaveModule(saved, path).ok());

  // Same tensor count (weight + bias) but different shapes.
  nn::Linear wider(4, 3, rng);
  EXPECT_FALSE(nn::LoadModule(wider, path).ok());
  nn::Linear narrower(3, 2, rng);
  EXPECT_FALSE(nn::LoadModule(narrower, path).ok());

  // Matching architecture still loads.
  nn::Linear same(4, 2, rng);
  EXPECT_TRUE(nn::LoadModule(same, path).ok());
  fs::remove_all(dir);
}

TEST(LoadModuleFailureTest, TensorCountMismatchReturnsError) {
  const std::string dir = TempDir("kdsel_module_count");
  const std::string path = dir + "/linear.bin";
  Rng rng(1);
  nn::Linear saved(4, 2, rng);
  ASSERT_TRUE(nn::SaveModule(saved, path).ok());

  nn::Sequential two_layers;
  two_layers.Add(std::make_unique<nn::Linear>(4, 2, rng));
  two_layers.Add(std::make_unique<nn::Linear>(2, 2, rng));
  EXPECT_FALSE(nn::LoadModule(two_layers, path).ok());
  fs::remove_all(dir);
}

TEST(LoadModuleFailureTest, TruncatedFileReturnsError) {
  const std::string dir = TempDir("kdsel_module_trunc");
  const std::string path = dir + "/linear.bin";
  Rng rng(1);
  nn::Linear saved(4, 2, rng);
  ASSERT_TRUE(nn::SaveModule(saved, path).ok());

  const std::string payload = ReadFile(path);
  ASSERT_GT(payload.size(), 8u);
  WriteFile(path, payload.substr(0, payload.size() - 4));
  nn::Linear target(4, 2, rng);
  EXPECT_FALSE(nn::LoadModule(target, path).ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace kdsel
