// Kernel-backend equivalence and dispatch tests: every supported SIMD
// variant must agree with the scalar reference within tight tolerance
// on randomized shapes — including sizes that are not multiples of any
// vector width — and the removed `0.0f` fast-path must not silently
// swallow NaN/Inf in any variant.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/kernels/kernels.h"
#include "nn/quantize.h"

namespace kdsel::nn::kernels {
namespace {

std::vector<float> RandomVec(size_t n, Rng& rng, double lo = -1.0,
                             double hi = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform(lo, hi));
  return v;
}

void ExpectAllClose(const std::vector<float>& ref,
                    const std::vector<float>& got, double rtol,
                    const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double tol =
        rtol * std::max(1.0, std::fabs(static_cast<double>(ref[i])));
    ASSERT_NEAR(ref[i], got[i], tol) << what << " element " << i;
  }
}

struct MatShape {
  size_t n, k, m;
};

// Deliberately odd sizes: 1 (degenerate), primes straddling the 4- and
// 8-lane widths, and one exact multiple as the control.
const MatShape kMatShapes[] = {{1, 1, 1},   {3, 5, 7},    {8, 16, 8},
                               {13, 29, 17}, {32, 33, 31}, {5, 64, 9}};

const size_t kVecSizes[] = {1, 2, 3, 7, 8, 9, 15, 31, 64, 100, 257};

class KernelEquivalenceTest : public ::testing::TestWithParam<Variant> {
 protected:
  const Ops& ops() { return GetOps(GetParam()); }
  const Ops& ref() { return GetOps(Variant::kScalar); }
  std::string Label(const char* op) {
    return std::string(op) + " [" + VariantName(GetParam()) + "]";
  }
};

TEST_P(KernelEquivalenceTest, MatMul) {
  Rng rng(101);
  for (const MatShape& s : kMatShapes) {
    const auto a = RandomVec(s.n * s.k, rng);
    const auto b = RandomVec(s.k * s.m, rng);
    std::vector<float> c_ref(s.n * s.m, 0.0f), c_got(s.n * s.m, 0.0f);
    ref().matmul(a.data(), b.data(), c_ref.data(), s.k, s.m, 0, s.n);
    ops().matmul(a.data(), b.data(), c_got.data(), s.k, s.m, 0, s.n);
    ExpectAllClose(c_ref, c_got, 1e-5, Label("matmul"));
  }
}

TEST_P(KernelEquivalenceTest, MatMulTransposedB) {
  Rng rng(102);
  for (const MatShape& s : kMatShapes) {
    const auto a = RandomVec(s.n * s.k, rng);
    const auto b = RandomVec(s.m * s.k, rng);  // B is [m, k]
    std::vector<float> c_ref(s.n * s.m, -7.0f), c_got(s.n * s.m, 7.0f);
    // Overwriting kernel: poisoned initial contents must not leak through.
    ref().matmul_tb(a.data(), b.data(), c_ref.data(), s.k, s.m, 0, s.n);
    ops().matmul_tb(a.data(), b.data(), c_got.data(), s.k, s.m, 0, s.n);
    ExpectAllClose(c_ref, c_got, 1e-5, Label("matmul_tb"));
  }
}

TEST_P(KernelEquivalenceTest, MatMulTransposedA) {
  Rng rng(103);
  for (const MatShape& s : kMatShapes) {
    const auto a = RandomVec(s.n * s.k, rng);  // A is [n, k]
    const auto b = RandomVec(s.n * s.m, rng);  // B is [n, m]
    std::vector<float> c_ref(s.k * s.m, 0.0f), c_got(s.k * s.m, 0.0f);
    ref().matmul_ta(a.data(), b.data(), c_ref.data(), s.n, s.k, s.m, 0, s.k);
    ops().matmul_ta(a.data(), b.data(), c_got.data(), s.n, s.k, s.m, 0, s.k);
    ExpectAllClose(c_ref, c_got, 1e-5, Label("matmul_ta"));
  }
}

TEST_P(KernelEquivalenceTest, RowRangeMatchesFullRange) {
  // A kernel invoked over [i0, i1) sub-ranges must produce exactly the
  // same rows as one full-range call: that's the determinism contract
  // that makes chunked ParallelFor results thread-count-invariant.
  Rng rng(104);
  const MatShape s{17, 23, 13};
  const auto a = RandomVec(s.n * s.k, rng);
  const auto b = RandomVec(s.k * s.m, rng);
  std::vector<float> c_full(s.n * s.m, 0.0f), c_split(s.n * s.m, 0.0f);
  ops().matmul(a.data(), b.data(), c_full.data(), s.k, s.m, 0, s.n);
  for (size_t i0 = 0; i0 < s.n; i0 += 3) {
    ops().matmul(a.data(), b.data(), c_split.data(), s.k, s.m, i0,
                 std::min(s.n, i0 + 3));
  }
  EXPECT_EQ(c_full, c_split) << Label("matmul row-range");
}

TEST_P(KernelEquivalenceTest, Elementwise) {
  Rng rng(105);
  for (size_t n : kVecSizes) {
    const auto x = RandomVec(n, rng);
    const auto t = RandomVec(n, rng);
    const float alpha = static_cast<float>(rng.Uniform(-2.0, 2.0));

    auto y_ref = RandomVec(n, rng);
    auto y_got = y_ref;
    ref().add(y_ref.data(), x.data(), n);
    ops().add(y_got.data(), x.data(), n);
    EXPECT_EQ(y_ref, y_got) << Label("add");

    // axpy is mul+add, which FMA-contracting variants fuse: allow
    // last-ulp differences there. The single-operation kernels below
    // have no reassociation freedom and must match bitwise.
    y_got = y_ref;
    ref().axpy(y_ref.data(), alpha, x.data(), n);
    ops().axpy(y_got.data(), alpha, x.data(), n);
    ExpectAllClose(y_ref, y_got, 1e-6, Label("axpy"));

    y_got = y_ref;
    ref().scale(y_ref.data(), alpha, n);
    ops().scale(y_got.data(), alpha, n);
    EXPECT_EQ(y_ref, y_got) << Label("scale");

    y_got = y_ref;
    ref().add_scalar(y_ref.data(), alpha, n);
    ops().add_scalar(y_got.data(), alpha, n);
    EXPECT_EQ(y_ref, y_got) << Label("add_scalar");

    ref().scaled_copy(y_ref.data(), x.data(), alpha, n);
    ops().scaled_copy(y_got.data(), x.data(), alpha, n);
    EXPECT_EQ(y_ref, y_got) << Label("scaled_copy");

    ref().scaled_diff(y_ref.data(), x.data(), t.data(), alpha, n);
    ops().scaled_diff(y_got.data(), x.data(), t.data(), alpha, n);
    EXPECT_EQ(y_ref, y_got) << Label("scaled_diff");
  }
}

TEST_P(KernelEquivalenceTest, Reductions) {
  Rng rng(106);
  for (size_t n : kVecSizes) {
    const auto a = RandomVec(n, rng);
    const auto b = RandomVec(n, rng);
    const double tol = 1e-5 * std::max<double>(1, n);
    EXPECT_NEAR(ref().dot(a.data(), b.data(), n),
                ops().dot(a.data(), b.data(), n), tol)
        << Label("dot") << " n=" << n;
    EXPECT_NEAR(ref().sum(a.data(), n), ops().sum(a.data(), n), tol)
        << Label("sum") << " n=" << n;
    EXPECT_NEAR(ref().squared_l2(a.data(), n), ops().squared_l2(a.data(), n),
                tol)
        << Label("squared_l2") << " n=" << n;
  }
}

TEST_P(KernelEquivalenceTest, ConvGradTap) {
  Rng rng(107);
  for (size_t n : kVecSizes) {
    const auto gy = RandomVec(n, rng);
    const auto x = RandomVec(n, rng);
    const float w = static_cast<float>(rng.Uniform(-1.5, 1.5));
    auto gx_ref = RandomVec(n, rng);
    auto gx_got = gx_ref;
    const float wg_ref =
        ref().conv_grad_tap(gy.data(), x.data(), w, gx_ref.data(), n);
    const float wg_got =
        ops().conv_grad_tap(gy.data(), x.data(), w, gx_got.data(), n);
    EXPECT_NEAR(wg_ref, wg_got, 1e-5 * std::max<double>(1, n))
        << Label("conv_grad_tap") << " n=" << n;
    ExpectAllClose(gx_ref, gx_got, 1e-5, Label("conv_grad_tap gx"));
  }
}

TEST_P(KernelEquivalenceTest, SoftmaxRow) {
  Rng rng(108);
  for (size_t n : kVecSizes) {
    const auto x = RandomVec(n, rng, -5.0, 5.0);
    std::vector<float> y_ref(n), y_got(n);
    ref().softmax_row(x.data(), y_ref.data(), n);
    ops().softmax_row(x.data(), y_got.data(), n);
    ExpectAllClose(y_ref, y_got, 1e-6, Label("softmax_row"));
    // Probabilities must still normalize.
    double total = 0.0;
    for (float v : y_got) total += v;
    EXPECT_NEAR(total, 1.0, 1e-4) << Label("softmax_row norm");
  }
}

TEST_P(KernelEquivalenceTest, AdamUpdate) {
  Rng rng(109);
  for (size_t n : kVecSizes) {
    auto p_ref = RandomVec(n, rng);
    auto m_ref = RandomVec(n, rng);
    auto v_ref = RandomVec(n, rng, 0.0, 1.0);  // second moment: nonneg
    const auto g = RandomVec(n, rng);
    auto p_got = p_ref;
    auto m_got = m_ref;
    auto v_got = v_ref;
    ref().adam_update(p_ref.data(), m_ref.data(), v_ref.data(), g.data(), n,
                      1e-3f, 0.9f, 0.999f, 1e-8f, 1e-7);
    ops().adam_update(p_got.data(), m_got.data(), v_got.data(), g.data(), n,
                      1e-3f, 0.9f, 0.999f, 1e-8f, 1e-7);
    ExpectAllClose(p_ref, p_got, 1e-5, Label("adam p"));
    ExpectAllClose(m_ref, m_got, 1e-6, Label("adam m"));
    ExpectAllClose(v_ref, v_got, 1e-6, Label("adam v"));
  }
}

TEST_P(KernelEquivalenceTest, ZeroTimesNanIsNan) {
  // The old scalar MatMul skipped `av == 0.0f` rows, silently turning
  // 0 * NaN into 0. No variant may inherit that: IEEE says NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // A: [2, 2] with a zero in the column that hits the NaN/Inf row of B.
  const std::vector<float> a = {0.0f, 1.0f, 0.0f, 0.0f};
  const std::vector<float> b = {nan, inf, 1.0f, 2.0f, 3.0f, 4.0f};  // [2, 3]
  std::vector<float> c(2 * 3, 0.0f);
  ops().matmul(a.data(), b.data(), c.data(), 2, 3, 0, 2);
  // Columns 0/1 hit 0 * NaN and 0 * Inf: NaN. Column 2 is finite.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(std::isnan(c[i * 3 + 0])) << Label("matmul NaN") << " i=" << i;
    EXPECT_TRUE(std::isnan(c[i * 3 + 1])) << Label("matmul Inf") << " i=" << i;
  }
  EXPECT_FLOAT_EQ(c[0 * 3 + 2], 4.0f) << Label("matmul finite col");
  EXPECT_FLOAT_EQ(c[1 * 3 + 2], 0.0f) << Label("matmul finite col");
  // axpy with a == 0 must also propagate.
  std::vector<float> y = {1.0f, 2.0f};
  const std::vector<float> x = {nan, 3.0f};
  ops().axpy(y.data(), 0.0f, x.data(), 2);
  EXPECT_TRUE(std::isnan(y[0])) << Label("axpy NaN");
}

// ---------------------------------------------------------------- int8
//
// The int8 kernels promise more than closeness: integer accumulation is
// exact and the dequantize uses one pinned fmaf, so every variant must
// produce IDENTICAL results (EXPECT_EQ on floats, not near).

std::vector<int8_t> RandomI8(size_t n, Rng& rng) {
  std::vector<int8_t> v(n);
  for (int8_t& x : v) {
    x = static_cast<int8_t>(std::lrint(rng.Uniform(-127.0, 127.0)));
  }
  return v;
}

TEST_P(KernelEquivalenceTest, I8QuantizeBitwise) {
  Rng rng(120);
  for (size_t n : kVecSizes) {
    // Inputs straddling the calibrated range [-2, 2]: out-of-range
    // values must saturate to ±127 (never -128) in every variant.
    const auto x = RandomVec(n, rng, -3.0, 3.0);
    const float inv_scale = 127.0f / 2.0f;
    std::vector<int8_t> q_ref(n, 99), q_got(n, -99);
    ref().i8_quantize(x.data(), inv_scale, q_ref.data(), n);
    ops().i8_quantize(x.data(), inv_scale, q_got.data(), n);
    EXPECT_EQ(q_ref, q_got) << Label("i8_quantize") << " n=" << n;
    for (int8_t v : q_got) {
      ASSERT_GE(v, -127) << Label("i8_quantize must never emit -128");
    }
  }
}

TEST_P(KernelEquivalenceTest, I8QuantizeSaturatesAtBoundary) {
  // Calibration absmax 2.0: exactly-at-boundary values map to exactly
  // ±127, anything beyond clamps there instead of wrapping.
  const std::vector<float> x = {2.0f, -2.0f, 2.5f, -1000.0f,
                                1000.0f, 0.0f, 1.0f};
  const float inv_scale = 127.0f / 2.0f;
  std::vector<int8_t> q(x.size());
  ops().i8_quantize(x.data(), inv_scale, q.data(), x.size());
  EXPECT_EQ(q[0], 127) << Label("absmax maps to +127");
  EXPECT_EQ(q[1], -127) << Label("-absmax maps to -127");
  EXPECT_EQ(q[2], 127) << Label("past-range saturates");
  EXPECT_EQ(q[3], -127) << Label("past-range saturates negative");
  EXPECT_EQ(q[4], 127) << Label("far past-range saturates");
  EXPECT_EQ(q[5], 0) << Label("zero stays zero");
  EXPECT_EQ(q[6], 64) << Label("mid-range rounds to nearest");
}

TEST_P(KernelEquivalenceTest, I8MatMulTbIdentical) {
  Rng rng(121);
  for (const MatShape& s : kMatShapes) {
    const auto a = RandomI8(s.n * s.k, rng);
    const auto b = RandomI8(s.m * s.k, rng);  // B is [m, k]
    const auto scale = RandomVec(s.m, rng, 0.001, 0.1);
    const auto bias = RandomVec(s.m, rng);
    std::vector<float> c_ref(s.n * s.m, -7.0f), c_got(s.n * s.m, 7.0f);
    ref().i8_matmul_tb(a.data(), b.data(), c_ref.data(), s.k, s.m,
                       scale.data(), bias.data(), 0, s.n);
    ops().i8_matmul_tb(a.data(), b.data(), c_got.data(), s.k, s.m,
                       scale.data(), bias.data(), 0, s.n);
    EXPECT_EQ(c_ref, c_got) << Label("i8_matmul_tb biased");
    // Bias-free path (attention projections).
    ref().i8_matmul_tb(a.data(), b.data(), c_ref.data(), s.k, s.m,
                       scale.data(), nullptr, 0, s.n);
    ops().i8_matmul_tb(a.data(), b.data(), c_got.data(), s.k, s.m,
                       scale.data(), nullptr, 0, s.n);
    EXPECT_EQ(c_ref, c_got) << Label("i8_matmul_tb unbiased");
  }
}

TEST_P(KernelEquivalenceTest, I8MatMulTbSaturatedOperands) {
  // All-saturated operands maximize the inner i16 pair sums the AVX2
  // path produces (2 * 127 * 127 = 32258 < 32767): no hidden overflow.
  const size_t n = 3, k = 67, m = 5;  // odd k: exercises the byte tail
  std::vector<int8_t> a(n * k, 127), b(m * k, 127);
  std::vector<int8_t> a_neg(n * k, -127);
  const std::vector<float> scale(m, 1.0f);
  std::vector<float> c(n * m);
  ops().i8_matmul_tb(a.data(), b.data(), c.data(), k, m, scale.data(),
                     nullptr, 0, n);
  for (float v : c) {
    EXPECT_EQ(v, static_cast<float>(127 * 127 * static_cast<int>(k)))
        << Label("i8 saturated positive");
  }
  ops().i8_matmul_tb(a_neg.data(), b.data(), c.data(), k, m, scale.data(),
                     nullptr, 0, n);
  for (float v : c) {
    EXPECT_EQ(v, static_cast<float>(-127 * 127 * static_cast<int>(k)))
        << Label("i8 saturated mixed-sign");
  }
}

TEST_P(KernelEquivalenceTest, I8DotIdentical) {
  Rng rng(122);
  for (size_t n : kVecSizes) {
    const auto a = RandomI8(n, rng);
    const auto b = RandomI8(n, rng);
    EXPECT_EQ(ref().i8_dot(a.data(), b.data(), n),
              ops().i8_dot(a.data(), b.data(), n))
        << Label("i8_dot") << " n=" << n;
  }
}

TEST_P(KernelEquivalenceTest, I8RowRangeMatchesFullRange) {
  // Same determinism contract as the fp32 kernels: chunked [i0, i1)
  // calls must reproduce the full-range result exactly.
  Rng rng(123);
  const MatShape s{17, 23, 13};
  const auto a = RandomI8(s.n * s.k, rng);
  const auto b = RandomI8(s.m * s.k, rng);
  const auto scale = RandomVec(s.m, rng, 0.001, 0.1);
  const auto bias = RandomVec(s.m, rng);
  std::vector<float> c_full(s.n * s.m, 0.0f), c_split(s.n * s.m, 0.0f);
  ops().i8_matmul_tb(a.data(), b.data(), c_full.data(), s.k, s.m,
                     scale.data(), bias.data(), 0, s.n);
  for (size_t i0 = 0; i0 < s.n; i0 += 3) {
    ops().i8_matmul_tb(a.data(), b.data(), c_split.data(), s.k, s.m,
                       scale.data(), bias.data(), i0, std::min(s.n, i0 + 3));
  }
  EXPECT_EQ(c_full, c_split) << Label("i8_matmul_tb row-range");
}

TEST_P(KernelEquivalenceTest, I8ImplNamePresent) {
  EXPECT_NE(ops().i8_impl, nullptr);
  EXPECT_STRNE(ops().i8_impl, "");
}

INSTANTIATE_TEST_SUITE_P(AllVariants, KernelEquivalenceTest,
                         ::testing::ValuesIn(SupportedVariants()),
                         [](const ::testing::TestParamInfo<Variant>& info) {
                           return VariantName(info.param);
                         });

// --------------------------------------------- weight-row quantization

TEST(QuantizeWeightRowsTest, ZeroRangeChannelStaysFinite) {
  // A constant-zero output channel has absmax 0: the scale must stay
  // finite and positive (QuantScaleFromAbsMax pins it to 1) so the
  // requantize never divides by zero, and the channel's output through
  // the matmul must be exactly its bias.
  EXPECT_EQ(QuantScaleFromAbsMax(0.0f), 1.0f);
  const size_t rows = 3, k = 8;
  std::vector<float> w(rows * k, 0.0f);
  for (size_t j = 0; j < k; ++j) w[2 * k + j] = 0.5f;  // one live row
  std::vector<int8_t> q(rows * k, 42);
  std::vector<float> rs(rows, -1.0f);
  const float act_scale = 0.02f;
  QuantizeWeightRows(w.data(), rows, k, act_scale, q.data(), rs.data());
  for (size_t j = 0; j < k; ++j) {
    EXPECT_EQ(q[0 * k + j], 0);
    EXPECT_EQ(q[1 * k + j], 0);
    EXPECT_EQ(q[2 * k + j], 127);  // row absmax quantizes to exactly 127
  }
  for (size_t r = 0; r < rows; ++r) {
    EXPECT_TRUE(std::isfinite(rs[r]) && rs[r] > 0.0f) << "row " << r;
  }

  // Through the dequantizing matmul: dead channels emit exactly bias.
  std::vector<int8_t> x(k, 93);
  const std::vector<float> bias = {1.5f, -2.25f, 0.5f};
  std::vector<float> out(rows, -1.0f);
  Dispatch().i8_matmul_tb(x.data(), q.data(), out.data(), k, rows, rs.data(),
                          bias.data(), 0, 1);
  EXPECT_EQ(out[0], 1.5f);
  EXPECT_EQ(out[1], -2.25f);
  EXPECT_NE(out[2], 0.5f);  // the live channel actually contracts
}

// ------------------------------------------------------------ dispatch

class DispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("KDSEL_SIMD");
    ResetDispatchForTesting();
  }
};

TEST_F(DispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(VariantSupported(Variant::kScalar));
  const auto variants = SupportedVariants();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front(), Variant::kScalar);
}

TEST_F(DispatchTest, TablesReportTheirVariant) {
  for (Variant v : SupportedVariants()) {
    EXPECT_EQ(GetOps(v).variant, v);
    EXPECT_STREQ(GetOps(v).name, VariantName(v));
  }
}

TEST_F(DispatchTest, BestVariantIsSupported) {
  EXPECT_TRUE(VariantSupported(BestSupportedVariant()));
}

TEST_F(DispatchTest, ParseVariantNameIsStrict) {
  EXPECT_TRUE(ParseVariantName("scalar").ok());
  EXPECT_TRUE(ParseVariantName("generic").ok());
  EXPECT_TRUE(ParseVariantName("avx2").ok());
  EXPECT_EQ(*ParseVariantName("scalar"), Variant::kScalar);
  EXPECT_EQ(*ParseVariantName("generic"), Variant::kGeneric);
  EXPECT_EQ(*ParseVariantName("avx2"), Variant::kAvx2);
  EXPECT_FALSE(ParseVariantName("").ok());
  EXPECT_FALSE(ParseVariantName("AVX2").ok());
  EXPECT_FALSE(ParseVariantName("scalar ").ok());
  EXPECT_FALSE(ParseVariantName("sse2").ok());
}

TEST_F(DispatchTest, ResetPinsVariant) {
  for (Variant v : SupportedVariants()) {
    ResetDispatchForTesting(v);
    EXPECT_EQ(ActiveVariant(), v);
    EXPECT_EQ(Dispatch().variant, v);
  }
}

TEST_F(DispatchTest, EnvOverrideSelectsVariant) {
  ::setenv("KDSEL_SIMD", "scalar", 1);
  ResetDispatchForTesting();
  EXPECT_EQ(ActiveVariant(), Variant::kScalar);
  ::unsetenv("KDSEL_SIMD");
  ResetDispatchForTesting();
  EXPECT_EQ(ActiveVariant(), BestSupportedVariant());
}

TEST_F(DispatchTest, InvalidEnvFallsBackToBest) {
  ::setenv("KDSEL_SIMD", "turbo9000", 1);
  ResetDispatchForTesting();
  EXPECT_EQ(ActiveVariant(), BestSupportedVariant());
}

}  // namespace
}  // namespace kdsel::nn::kernels
