// Proves the disabled-tracing contract from DESIGN.md: a KDSEL_SPAN on
// a hot path whose tracing is off costs one relaxed atomic load, which
// must stay under 5% of a realistic instrumented kernel. The baseline
// is a twin loop with the span removed — byte-for-byte the code that
// KDSEL_NO_TRACING compiles the instrumented loop down to.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/clock.h"
#include "obs/trace.h"

namespace kdsel {
namespace {

// Sanitizers add per-access shadow work that dwarfs the span's relaxed
// load and makes the two loops diverge for unrelated reasons; keep the
// test as a smoke check there with a loose bound.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// One step is a dot product sized like the per-call work of the finest
// spans in the tree (nn.matmul on a small model): big enough that a
// span per step is realistic granularity, small enough that a regressed
// disabled path (a lock, an unconditional clock read) would show up.
constexpr size_t kVecLen = 2048;
constexpr int kStepsPerRep = 4000;
constexpr int kReps = 15;

// Compiler barrier: makes the optimizer assume memory changed between
// steps so the (pure, loop-invariant) dot product cannot be hoisted out
// of the timed loop. Without it the plain loop folds to one dot product
// while the span's atomic load pins the instrumented loop in place, and
// the comparison measures the hoist, not the span.
inline void ClobberMemory() { asm volatile("" ::: "memory"); }

float DotKernel(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float InstrumentedStep(const float* a, const float* b) {
  KDSEL_SPAN("trace_overhead_test.step");
  return DotKernel(a, b, kVecLen);
}

float PlainStep(const float* a, const float* b) {
  return DotKernel(a, b, kVecLen);
}

// Min-of-reps: the minimum is the run least disturbed by the scheduler,
// so it isolates the code's own cost far better than a mean would.
uint64_t MinRepNs(float (*step)(const float*, const float*), const float* a,
                  const float* b, float* sink) {
  uint64_t best = UINT64_MAX;
  for (int rep = 0; rep < kReps; ++rep) {
    float acc = 0.0f;
    const uint64_t begin = obs::NowNs();
    for (int i = 0; i < kStepsPerRep; ++i) {
      acc += step(a, b);
      ClobberMemory();
    }
    const uint64_t elapsed = obs::NowNs() - begin;
    *sink += acc;  // Keeps the kernel from being optimized away.
    if (elapsed < best) best = elapsed;
  }
  return best;
}

TEST(TraceOverheadTest, DisabledSpanCostsUnderFivePercent) {
  ASSERT_FALSE(obs::TracingEnabled());

  std::vector<float> a(kVecLen), b(kVecLen);
  for (size_t i = 0; i < kVecLen; ++i) {
    a[i] = static_cast<float>(i % 7) * 0.25f;
    b[i] = static_cast<float>(i % 11) * 0.125f;
  }
  float sink = 0.0f;

  // Warm up caches and frequency scaling before timing either variant.
  (void)MinRepNs(PlainStep, a.data(), b.data(), &sink);
  (void)MinRepNs(InstrumentedStep, a.data(), b.data(), &sink);

  const uint64_t plain_ns = MinRepNs(PlainStep, a.data(), b.data(), &sink);
  const uint64_t traced_ns =
      MinRepNs(InstrumentedStep, a.data(), b.data(), &sink);
  ASSERT_GT(plain_ns, 0u);
  EXPECT_GT(sink, 0.0f);

  const double ratio =
      static_cast<double>(traced_ns) / static_cast<double>(plain_ns);
  const double limit = kSanitized ? 1.5 : 1.05;
  EXPECT_LT(ratio, limit) << "disabled KDSEL_SPAN overhead: plain="
                          << plain_ns << "ns traced=" << traced_ns << "ns";
}

}  // namespace
}  // namespace kdsel
