// Steady-state allocation regression test for the training hot loop.
//
// The first epoch warms up the workspace pools, hoisted scratch vectors,
// and loss-result buffers; every epoch after that must perform ZERO heap
// allocations. Two counters pin this down: a global operator new/delete
// replacement counting every allocation in the process, and the
// workspace pool's own HeapAllocationCount() (buffers that missed the
// freelists). The trainer's on_epoch_end hook snapshots both at each
// epoch boundary.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "nn/workspace.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// The replacement operators must allocate with malloc/free directly.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;  // kdsel-lint: allow(naked-new)
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;  // kdsel-lint: allow(naked-new)
  throw std::bad_alloc();
}

// kdsel-lint: allow(naked-new)
void operator delete(void* p) noexcept { std::free(p); }
// kdsel-lint: allow(naked-new)
void operator delete[](void* p) noexcept { std::free(p); }
// kdsel-lint: allow(naked-new)
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
// kdsel-lint: allow(naked-new)
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kdsel {
namespace {

core::SelectorTrainingData MakeData() {
  core::SelectorTrainingData data;
  data.num_classes = 3;
  Rng rng(7);
  // 64 samples with batch_size 16: every batch is full-sized, so batch
  // shapes — and therefore pooled buffer sizes — repeat exactly.
  const size_t kN = 64, kLen = 32;
  for (size_t i = 0; i < kN; ++i) {
    const int label = static_cast<int>(i % data.num_classes);
    std::vector<float> window(kLen);
    for (size_t t = 0; t < kLen; ++t) {
      window[t] = static_cast<float>(
          std::sin(0.25 * static_cast<double>(t) * (1.0 + label)) +
          0.1 * rng.Normal());
    }
    data.windows.push_back(std::move(window));
    data.labels.push_back(label);
    std::vector<float> perf(data.num_classes, 0.2f);
    perf[static_cast<size_t>(label)] = 0.9f;
    data.performance.push_back(std::move(perf));
    data.texts.push_back("series family F" + std::to_string(label));
  }
  return data;
}

TEST(TrainAllocTest, SteadyStateEpochsAllocateNothing) {
  // Single-threaded pool: ParallelFor takes the inline path, so the
  // only permissible allocations are the trainer's own — which must all
  // happen during warmup.
  ThreadPool::ResetGlobalForTesting(1);
  const core::SelectorTrainingData data = MakeData();

  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 4;
  opts.batch_size = 16;
  opts.seed = 3;
  opts.use_pisl = true;
  opts.use_mki = true;
  opts.pruning.mode = core::PruningMode::kNone;

  // Reserved up front: the snapshot push_backs inside the hook must not
  // allocate themselves, or they would show up in their own deltas.
  std::vector<uint64_t> allocs_at_epoch;
  std::vector<uint64_t> pool_misses_at_epoch;
  allocs_at_epoch.reserve(opts.epochs);
  pool_misses_at_epoch.reserve(opts.epochs);
  opts.on_epoch_end = [&](size_t) {
    allocs_at_epoch.push_back(g_allocations.load(std::memory_order_relaxed));
    pool_misses_at_epoch.push_back(nn::Workspace::HeapAllocationCount());
  };

  core::TrainStats stats;
  auto selector = core::TrainSelector(data, opts, &stats);
  ASSERT_TRUE(selector.ok()) << selector.status();
  ASSERT_EQ(allocs_at_epoch.size(), opts.epochs);

  // Epoch 0 warms the pools and epoch 1 settles freelist capacities;
  // every epoch after that must be allocation-free.
  for (size_t e = 2; e < opts.epochs; ++e) {
    EXPECT_EQ(allocs_at_epoch[e] - allocs_at_epoch[e - 1], 0u)
        << "operator new called during steady-state epoch " << e;
    EXPECT_EQ(pool_misses_at_epoch[e] - pool_misses_at_epoch[e - 1], 0u)
        << "workspace pool missed its freelist during epoch " << e;
  }

  ThreadPool::ResetGlobalForTesting(0);
}

}  // namespace
}  // namespace kdsel
