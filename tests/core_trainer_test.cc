#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.h"
#include "core/mki.h"
#include "core/selection.h"
#include "core/trainer.h"
#include "nn/optimizer.h"

namespace kdsel::core {
namespace {

/// A small 3-class window task where class is determined by frequency,
/// with synthetic "performance" rows (best model scores highest) and
/// class-revealing metadata texts.
SelectorTrainingData MakeTask(size_t per_class, uint64_t seed,
                              size_t window = 32) {
  Rng rng(seed);
  SelectorTrainingData data;
  data.num_classes = 3;
  const char* kTexts[3] = {
      "slow periodic wave from dataset alpha with few anomalies",
      "fast oscillation from dataset beta with spiky anomalies",
      "steady linear ramp from dataset gamma with drift anomalies"};
  for (size_t i = 0; i < per_class; ++i) {
    for (int c = 0; c < 3; ++c) {
      std::vector<float> w(window);
      double phase = rng.Uniform(0, 6.28);
      for (size_t t = 0; t < window; ++t) {
        switch (c) {
          case 0:
            w[t] = static_cast<float>(std::sin(0.2 * t + phase) +
                                      0.05 * rng.Normal());
            break;
          case 1:
            w[t] = static_cast<float>(std::sin(1.4 * t + phase) +
                                      0.05 * rng.Normal());
            break;
          default:
            w[t] = static_cast<float>(0.07 * t + 0.1 * rng.Normal());
        }
      }
      data.windows.push_back(std::move(w));
      data.labels.push_back(c);
      std::vector<float> perf(3, 0.2f);
      perf[static_cast<size_t>(c)] = 0.9f;
      perf[(static_cast<size_t>(c) + 1) % 3] = 0.4f;
      data.performance.push_back(std::move(perf));
      data.texts.push_back(kTexts[c]);
    }
  }
  return data;
}

double AccuracyOn(const TrainedSelector& selector,
                  const SelectorTrainingData& data) {
  auto pred = selector.Predict(data.windows);
  KDSEL_CHECK(pred.ok());
  size_t hits = 0;
  for (size_t i = 0; i < pred->size(); ++i) {
    hits += ((*pred)[i] == data.labels[i]);
  }
  return static_cast<double>(hits) / static_cast<double>(pred->size());
}

TrainerOptions FastOptions() {
  TrainerOptions opts;
  opts.backbone = "ConvNet";  // cheapest backbone for tests
  opts.epochs = 8;
  opts.batch_size = 32;
  opts.learning_rate = 3e-3;
  opts.seed = 5;
  return opts;
}

TEST(TrainerTest, StandardTrainingLearnsTask) {
  SelectorTrainingData train = MakeTask(20, 1);
  TrainStats stats;
  auto selector = TrainSelector(train, FastOptions(), &stats);
  ASSERT_TRUE(selector.ok()) << selector.status();
  SelectorTrainingData test = MakeTask(8, 2);
  EXPECT_GT(AccuracyOn(**selector, test), 0.7);
  EXPECT_GT(stats.train_seconds, 0.0);
  EXPECT_EQ(stats.samples_visited, stats.full_dataset_visits);
  EXPECT_EQ(stats.epoch_loss.size(), 8u);
}

TEST(TrainerTest, PislTrainingLearnsTask) {
  SelectorTrainingData train = MakeTask(20, 3);
  TrainerOptions opts = FastOptions();
  opts.use_pisl = true;
  auto selector = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(selector.ok()) << selector.status();
  SelectorTrainingData test = MakeTask(8, 4);
  EXPECT_GT(AccuracyOn(**selector, test), 0.7);
}

TEST(TrainerTest, MkiTrainingLearnsTask) {
  SelectorTrainingData train = MakeTask(20, 5);
  TrainerOptions opts = FastOptions();
  opts.use_mki = true;
  auto selector = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(selector.ok()) << selector.status();
  SelectorTrainingData test = MakeTask(8, 6);
  EXPECT_GT(AccuracyOn(**selector, test), 0.7);
}

TEST(TrainerTest, FullKdSelectorLearnsTaskWithFewerVisits) {
  SelectorTrainingData train = MakeTask(25, 7);
  TrainerOptions opts = FastOptions();
  opts.epochs = 10;
  opts.use_pisl = true;
  opts.use_mki = true;
  opts.pruning.mode = PruningMode::kPa;
  TrainStats stats;
  auto selector = TrainSelector(train, opts, &stats);
  ASSERT_TRUE(selector.ok()) << selector.status();
  EXPECT_LT(stats.samples_visited, stats.full_dataset_visits);
  SelectorTrainingData test = MakeTask(8, 8);
  EXPECT_GT(AccuracyOn(**selector, test), 0.65);
  EXPECT_EQ((*selector)->name(), "ConvNet+KDSelector");
}

TEST(TrainerTest, InfoBatchVisitsFewerThanFull) {
  SelectorTrainingData train = MakeTask(25, 9);
  TrainerOptions opts = FastOptions();
  opts.pruning.mode = PruningMode::kInfoBatch;
  TrainStats stats;
  auto selector = TrainSelector(train, opts, &stats);
  ASSERT_TRUE(selector.ok());
  EXPECT_LT(stats.samples_visited, stats.full_dataset_visits);
}

TEST(TrainerTest, ValidatesInput) {
  TrainerOptions opts = FastOptions();
  SelectorTrainingData empty;
  empty.num_classes = 3;
  EXPECT_FALSE(TrainSelector(empty, opts, nullptr).ok());

  SelectorTrainingData task = MakeTask(2, 1);
  opts.use_pisl = true;
  task.performance.clear();
  EXPECT_FALSE(TrainSelector(task, opts, nullptr).ok());

  SelectorTrainingData task2 = MakeTask(2, 1);
  TrainerOptions opts2 = FastOptions();
  opts2.use_mki = true;
  task2.texts.clear();
  EXPECT_FALSE(TrainSelector(task2, opts2, nullptr).ok());

  SelectorTrainingData task3 = MakeTask(2, 1);
  task3.labels[0] = 7;
  EXPECT_FALSE(TrainSelector(task3, FastOptions(), nullptr).ok());

  TrainerOptions opts4 = FastOptions();
  opts4.backbone = "NoSuchNet";
  SelectorTrainingData task4 = MakeTask(2, 1);
  EXPECT_FALSE(TrainSelector(task4, opts4, nullptr).ok());
}

TEST(TrainerTest, DeterministicTraining) {
  SelectorTrainingData train = MakeTask(10, 11);
  TrainerOptions opts = FastOptions();
  opts.epochs = 3;
  auto s1 = TrainSelector(train, opts, nullptr);
  auto s2 = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(s1.ok() && s2.ok());
  auto p1 = (*s1)->Predict(train.windows);
  auto p2 = (*s2)->Predict(train.windows);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST(TrainerTest, FitOnTrainedSelectorFails) {
  SelectorTrainingData train = MakeTask(4, 12);
  TrainerOptions opts = FastOptions();
  opts.epochs = 1;
  auto selector = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(selector.ok());
  selectors::TrainingData dummy;
  EXPECT_FALSE((*selector)->Fit(dummy).ok());
}

TEST(TrainerTest, PredictRejectsWrongWindowLength) {
  SelectorTrainingData train = MakeTask(4, 13);
  TrainerOptions opts = FastOptions();
  opts.epochs = 1;
  auto selector = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(selector.ok());
  EXPECT_FALSE((*selector)->Predict({{1.0f, 2.0f}}).ok());
  EXPECT_FALSE((*selector)->Predict({}).ok());
}

TEST(TrainerTest, SaveLoadRoundTripPreservesPredictions) {
  SelectorTrainingData train = MakeTask(10, 14);
  TrainerOptions opts = FastOptions();
  opts.epochs = 4;
  auto selector = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(selector.ok());
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "kdsel_selector").string();
  ASSERT_TRUE((*selector)->Save(prefix).ok());
  auto loaded = TrainedSelector::Load(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto p1 = (*selector)->Predict(train.windows);
  auto p2 = (*loaded)->Predict(train.windows);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);
  EXPECT_EQ((*loaded)->num_classes(), 3u);
  std::filesystem::remove(prefix + ".meta");
  std::filesystem::remove(prefix + ".weights");
}

TEST(MkiHeadTest, LossDropsForAlignedPairsAfterUpdates) {
  // Train only the projections on fixed aligned features: InfoNCE must
  // decrease, showing gradients point the right way end to end.
  Rng rng(15);
  MkiHead::Options opts;
  opts.ts_feature_dim = 8;
  opts.text_feature_dim = 12;
  opts.hidden = 16;
  opts.shared_dim = 4;
  MkiHead head(opts, rng);

  nn::Tensor z_t({6, 8}), z_k({6, 12});
  for (float& v : z_t.mutable_data()) v = static_cast<float>(rng.Normal());
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 12; ++j) {
      z_k.At(i, j) = z_t.At(i, j % 8);  // aligned by construction
    }
  }
  nn::Adam opt(head.Parameters(), 1e-2);
  double first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    auto out = head.ComputeLoss(z_t, z_k, {});
    if (step == 0) first = out.loss;
    last = out.loss;
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_LT(last, first);
}

TEST(SelectionTest, MajorityVote) {
  SelectorTrainingData train = MakeTask(15, 16);
  TrainerOptions opts = FastOptions();
  auto selector = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(selector.ok());

  // Build a series whose windows are all class-1-shaped (fast sine).
  std::vector<float> values(32 * 6);
  for (size_t t = 0; t < values.size(); ++t) {
    values[t] = static_cast<float>(std::sin(1.4 * t));
  }
  ts::TimeSeries series("fast", std::move(values));
  ts::WindowOptions wo;
  wo.length = 32;
  wo.stride = 32;
  auto sel = SelectSeriesModel(**selector, series, wo, 3);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->model, 1);
  EXPECT_EQ(sel->num_windows, 6u);
  int total_votes = 0;
  for (int v : sel->votes) total_votes += v;
  EXPECT_EQ(total_votes, 6);
}

TEST(SelectionTest, RejectsZeroClasses) {
  SelectorTrainingData train = MakeTask(2, 17);
  TrainerOptions opts = FastOptions();
  opts.epochs = 1;
  auto selector = TrainSelector(train, opts, nullptr);
  ASSERT_TRUE(selector.ok());
  ts::TimeSeries series("x", std::vector<float>(64, 1.0f));
  ts::WindowOptions wo;
  wo.length = 32;
  EXPECT_FALSE(SelectSeriesModel(**selector, series, wo, 0).ok());
}

}  // namespace
}  // namespace kdsel::core
