#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "metrics/metrics.h"
#include "metrics/range_metrics.h"

namespace kdsel::metrics {
namespace {

TEST(BufferedLabelsTest, ZeroBufferReproducesBinary) {
  std::vector<uint8_t> labels{0, 0, 1, 1, 0};
  auto soft = BufferedLabels(labels, 0);
  EXPECT_EQ(soft, (std::vector<float>{0, 0, 1, 1, 0}));
}

TEST(BufferedLabelsTest, RampDecaysFromRegionBorder) {
  std::vector<uint8_t> labels(11, 0);
  labels[5] = 1;
  auto soft = BufferedLabels(labels, 3);
  EXPECT_FLOAT_EQ(soft[5], 1.0f);
  // Monotone decay on both sides, symmetric.
  EXPECT_GT(soft[4], soft[3]);
  EXPECT_GT(soft[3], soft[2]);
  EXPECT_FLOAT_EQ(soft[4], soft[6]);
  EXPECT_FLOAT_EQ(soft[3], soft[7]);
  // Beyond the buffer: zero.
  EXPECT_FLOAT_EQ(soft[1], 0.0f);
  EXPECT_FLOAT_EQ(soft[0], 0.0f);
  // sqrt ramp values.
  EXPECT_NEAR(soft[4], std::sqrt(1.0 - 1.0 / 4.0), 1e-5);
}

TEST(BufferedLabelsTest, AllClean) {
  std::vector<uint8_t> labels(8, 0);
  auto soft = BufferedLabels(labels, 4);
  for (float v : soft) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(WeightedAucRocTest, BinaryWeightsMatchPlainAuc) {
  Rng rng(1);
  const size_t n = 500;
  std::vector<float> scores(n);
  std::vector<uint8_t> labels(n);
  std::vector<float> weights(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.3);
    weights[i] = labels[i] ? 1.0f : 0.0f;
  }
  auto plain = AucRoc(scores, labels);
  auto weighted = WeightedAucRoc(scores, weights);
  ASSERT_TRUE(plain.ok() && weighted.ok());
  EXPECT_NEAR(*plain, *weighted, 1e-9);
}

TEST(WeightedAucPrTest, BinaryWeightsMatchPlainAp) {
  Rng rng(2);
  const size_t n = 400;
  std::vector<float> scores(n);
  std::vector<uint8_t> labels(n);
  std::vector<float> weights(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.2);
    weights[i] = labels[i] ? 1.0f : 0.0f;
  }
  auto plain = AucPr(scores, labels);
  auto weighted = WeightedAucPr(scores, weights);
  ASSERT_TRUE(plain.ok() && weighted.ok());
  EXPECT_NEAR(*plain, *weighted, 1e-9);
}

TEST(WeightedAucRocTest, DegenerateWeightsGiveHalf) {
  auto all_pos = WeightedAucRoc({0.1f, 0.9f}, {1.0f, 1.0f});
  ASSERT_TRUE(all_pos.ok());
  EXPECT_DOUBLE_EQ(*all_pos, 0.5);
}

TEST(WeightedAucRocTest, RejectsBadWeights) {
  EXPECT_FALSE(WeightedAucRoc({0.5f}, {1.5f}).ok());
  EXPECT_FALSE(WeightedAucRoc({0.5f}, {-0.1f}).ok());
  EXPECT_FALSE(WeightedAucRoc({0.5f}, {0.5f, 0.4f}).ok());
}

TEST(RangeAucTest, RewardsNearMissMoreThanFarMiss) {
  // Anomaly at [50, 55); detector A fires at 48 (near), B at 20 (far).
  const size_t n = 100;
  std::vector<uint8_t> labels(n, 0);
  for (size_t i = 50; i < 55; ++i) labels[i] = 1;
  std::vector<float> near_scores(n, 0.0f), far_scores(n, 0.0f);
  near_scores[48] = 1.0f;
  far_scores[20] = 1.0f;
  auto near_auc = RangeAucPr(near_scores, labels, 8);
  auto far_auc = RangeAucPr(far_scores, labels, 8);
  ASSERT_TRUE(near_auc.ok() && far_auc.ok());
  EXPECT_GT(*near_auc, *far_auc);
  // Plain AUC-PR cannot tell the two apart.
  auto plain_near = AucPr(near_scores, labels);
  auto plain_far = AucPr(far_scores, labels);
  ASSERT_TRUE(plain_near.ok() && plain_far.ok());
  EXPECT_NEAR(*plain_near, *plain_far, 1e-9);
}

TEST(RangeAucTest, PerfectDetectionStaysPerfect) {
  const size_t n = 60;
  std::vector<uint8_t> labels(n, 0);
  for (size_t i = 30; i < 36; ++i) labels[i] = 1;
  std::vector<float> scores(n, 0.0f);
  for (size_t i = 30; i < 36; ++i) scores[i] = 1.0f;
  auto roc = RangeAucRoc(scores, labels, 0);
  ASSERT_TRUE(roc.ok());
  EXPECT_DOUBLE_EQ(*roc, 1.0);
}

TEST(VusTest, AveragesOverBuffers) {
  Rng rng(3);
  const size_t n = 200;
  std::vector<uint8_t> labels(n, 0);
  for (size_t i = 90; i < 100; ++i) labels[i] = 1;
  std::vector<float> scores(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform() * 0.2);
  }
  for (size_t i = 85; i < 100; ++i) scores[i] = 0.9f;  // slightly early
  auto vus = VusPr(scores, labels, 16);
  auto r0 = RangeAucPr(scores, labels, 0);
  auto r16 = RangeAucPr(scores, labels, 16);
  ASSERT_TRUE(vus.ok() && r0.ok() && r16.ok());
  // VUS lies between the tightest and loosest buffer values.
  EXPECT_GE(*vus, std::min(*r0, *r16) - 1e-9);
  EXPECT_LE(*vus, std::max(*r0, *r16) + 1e-9);
}

TEST(MetricEnumTest, NamesRoundTrip) {
  for (Metric m : {Metric::kAucPr, Metric::kAucRoc, Metric::kBestF1,
                   Metric::kRangeAucPr, Metric::kRangeAucRoc, Metric::kVusPr,
                   Metric::kVusRoc}) {
    auto parsed = MetricFromName(MetricToString(m));
    ASSERT_TRUE(parsed.ok()) << MetricToString(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(MetricFromName("nope").ok());
}

TEST(MetricEnumTest, EvaluateMetricDispatches) {
  // A detection that covers the anomaly block plus its ramp buffer is
  // near-perfect under every metric.
  const size_t n = 200;
  std::vector<uint8_t> labels(n, 0);
  std::vector<float> scores(n, 0.0f);
  for (size_t i = 80; i < 100; ++i) labels[i] = 1;
  for (size_t i = 80; i < 100; ++i) scores[i] = 1.0f;
  for (Metric m : {Metric::kAucPr, Metric::kAucRoc, Metric::kBestF1,
                   Metric::kRangeAucPr, Metric::kRangeAucRoc, Metric::kVusPr,
                   Metric::kVusRoc}) {
    auto value = EvaluateMetric(m, scores, labels);
    ASSERT_TRUE(value.ok()) << MetricToString(m);
    EXPECT_GE(*value, 0.5) << MetricToString(m);
  }
}

}  // namespace
}  // namespace kdsel::metrics
