// Tests for the src/obs/ tracing and metrics layer: registry handle
// identity, exact concurrent counter sums, histogram percentiles and
// reset semantics, snapshot JSON well-formedness, span recording with
// nesting/thread attribution, buffer overflow accounting, and the
// chrome-trace writer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace kdsel {
namespace {

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& a = registry.GetCounter("kdsel.test.handle");
  obs::Counter& b = registry.GetCounter("kdsel.test.handle");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = registry.GetGauge("kdsel.test.handle");  // distinct kind
  obs::Gauge& g2 = registry.GetGauge("kdsel.test.handle");
  EXPECT_EQ(&g1, &g2);
  obs::Histogram& h1 = registry.GetHistogram("kdsel.test.handle");
  obs::Histogram& h2 = registry.GetHistogram("kdsel.test.handle");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ParallelIncrementsSumExactly) {
  auto& counter =
      obs::MetricsRegistry::Global().GetCounter("kdsel.test.parallel_sum");
  counter.Reset();
  constexpr size_t kItems = 10000;
  ParallelFor(kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) counter.Increment();
  });
  EXPECT_EQ(counter.Value(), kItems);
}

TEST(MetricsRegistryTest, ConcurrentThreadsSumExactly) {
  auto& counter =
      obs::MetricsRegistry::Global().GetCounter("kdsel.test.thread_sum");
  counter.Reset();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 25000;
  // Raw threads on purpose: the registry must be safe outside the pool.
  std::vector<std::thread> threads;  // kdsel-lint: allow(raw-thread)
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, SummaryAndReset) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const obs::Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.samples, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  // Geometric buckets (2^(1/4) growth) bound relative error at ~19%.
  EXPECT_GT(s.p50, 500.0 * 0.8);
  EXPECT_LT(s.p50, 500.0 * 1.25);
  EXPECT_GE(s.p99, 990.0 * 0.8);
  EXPECT_LE(s.p99, 1000.0);

  h.Reset();
  const obs::Histogram::Summary empty = h.Summarize();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.samples, 0u);
}

TEST(HistogramTest, NegativeAndNanClampToZero) {
  obs::Histogram h;
  h.Record(-5.0);
  h.Record(std::nan(""));
  const obs::Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(MetricsRegistryTest, SnapshotJsonParsesAndCarriesValues) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("kdsel.test.snapshot_counter").Reset();
  registry.GetCounter("kdsel.test.snapshot_counter").Increment(41);
  registry.GetGauge("kdsel.test.snapshot_gauge").Set(2.5);
  auto& histogram = registry.GetHistogram("kdsel.test.snapshot_histogram");
  histogram.Reset();
  histogram.Record(10.0);
  histogram.Record(20.0);

  auto parsed = serve::Json::Parse(registry.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const serve::Json* counter =
      parsed->Find("counters")->Find("kdsel.test.snapshot_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->as_number(), 41.0);
  const serve::Json* gauge =
      parsed->Find("gauges")->Find("kdsel.test.snapshot_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->as_number(), 2.5);
  const serve::Json* hist =
      parsed->Find("histograms")->Find("kdsel.test.snapshot_histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->Find("mean")->as_number(), 15.0);
}

TEST(TraceTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(obs::TracingEnabled());
  { KDSEL_SPAN("obs_test.should_not_appear"); }
  for (const obs::TraceEvent& e : obs::CollectTraceEvents()) {
    EXPECT_STRNE(e.name, "obs_test.should_not_appear");
  }
}

TEST(TraceTest, SpanNestingAndThreadAttribution) {
  obs::StartTracing();
  {
    KDSEL_SPAN("obs_test.outer");
    { KDSEL_SPAN("obs_test.inner"); }
  }
  // One span on a second thread: it must carry a different tid.
  std::thread other([] {  // kdsel-lint: allow(raw-thread)
    KDSEL_SPAN("obs_test.other_thread");
  });
  other.join();
  obs::StopTracing();

  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* remote = nullptr;
  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "obs_test.outer") outer = &e;
    if (std::string(e.name) == "obs_test.inner") inner = &e;
    if (std::string(e.name) == "obs_test.other_thread") remote = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(remote, nullptr);
  // Nesting: inner fully contained in outer, same thread.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_NE(remote->tid, outer->tid);
}

TEST(TraceTest, ChromeTraceJsonRoundTrips) {
  obs::StartTracing();
  {
    KDSEL_SPAN("obs_test.export_outer");
    { KDSEL_SPAN("obs_test.export_inner"); }
  }
  obs::StopTracing();

  const std::string path = ::testing::TempDir() + "/kdsel_obs_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());

  auto parsed = serve::Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const serve::Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool outer_seen = false, inner_seen = false;
  for (const serve::Json& event : events->items()) {
    EXPECT_EQ(event.Find("ph")->as_string(), "X");
    EXPECT_EQ(event.Find("cat")->as_string(), "kdsel");
    EXPECT_GE(event.Find("ts")->as_number(), 0.0);
    EXPECT_GE(event.Find("dur")->as_number(), 0.0);
    if (event.Find("name")->as_string() == "obs_test.export_outer") {
      outer_seen = true;
    }
    if (event.Find("name")->as_string() == "obs_test.export_inner") {
      inner_seen = true;
    }
  }
  EXPECT_TRUE(outer_seen);
  EXPECT_TRUE(inner_seen);
}

TEST(TraceTest, OverflowDropsNewestAndCounts) {
  obs::StartTracing();
  // More spans than one thread's buffer holds (32768): the excess must
  // be counted as dropped, not crash or overwrite.
  constexpr size_t kSpans = 40000;
  for (size_t i = 0; i < kSpans; ++i) {
    KDSEL_SPAN("obs_test.flood");
  }
  obs::StopTracing();
  EXPECT_GE(obs::DroppedTraceEvents(), kSpans - 32768);
  // A fresh StartTracing rewinds both the buffers and the counter.
  obs::StartTracing();
  obs::StopTracing();
  EXPECT_EQ(obs::DroppedTraceEvents(), 0u);
}

TEST(TraceTest, WriteToUnwritablePathFails) {
  const Status status = obs::WriteChromeTrace("/no/such/dir/trace.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace kdsel
