// Tests for the src/obs/ tracing and metrics layer: registry handle
// identity, exact concurrent counter sums, histogram percentiles and
// reset semantics, snapshot JSON well-formedness, span recording with
// nesting/thread attribution, buffer overflow accounting, and the
// chrome-trace writer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace kdsel {
namespace {

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& a = registry.GetCounter("kdsel.test.handle");
  obs::Counter& b = registry.GetCounter("kdsel.test.handle");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = registry.GetGauge("kdsel.test.handle");  // distinct kind
  obs::Gauge& g2 = registry.GetGauge("kdsel.test.handle");
  EXPECT_EQ(&g1, &g2);
  obs::Histogram& h1 = registry.GetHistogram("kdsel.test.handle");
  obs::Histogram& h2 = registry.GetHistogram("kdsel.test.handle");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ParallelIncrementsSumExactly) {
  auto& counter =
      obs::MetricsRegistry::Global().GetCounter("kdsel.test.parallel_sum");
  counter.Reset();
  constexpr size_t kItems = 10000;
  ParallelFor(kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) counter.Increment();
  });
  EXPECT_EQ(counter.Value(), kItems);
}

TEST(MetricsRegistryTest, ConcurrentThreadsSumExactly) {
  auto& counter =
      obs::MetricsRegistry::Global().GetCounter("kdsel.test.thread_sum");
  counter.Reset();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 25000;
  // Raw threads on purpose: the registry must be safe outside the pool.
  std::vector<std::thread> threads;  // kdsel-lint: allow(raw-thread)
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, SummaryAndReset) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const obs::Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.samples, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  // Geometric buckets (2^(1/4) growth) bound relative error at ~19%.
  EXPECT_GT(s.p50, 500.0 * 0.8);
  EXPECT_LT(s.p50, 500.0 * 1.25);
  EXPECT_GE(s.p99, 990.0 * 0.8);
  EXPECT_LE(s.p99, 1000.0);

  h.Reset();
  const obs::Histogram::Summary empty = h.Summarize();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.samples, 0u);
}

TEST(HistogramTest, PercentileAndSampleCountMatchSummary) {
  obs::Histogram h;
  EXPECT_EQ(h.SampleCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);  // Empty: defined as 0.
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.SampleCount(), 1000u);
  const obs::Histogram::Summary s = h.Summarize();
  // Percentile(q) is THE percentile implementation: the Summary fields
  // must be exactly the same estimator, not a parallel computation.
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), s.p50);
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), s.p95);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), s.p99);
  EXPECT_DOUBLE_EQ(h.Percentile(0.999), s.p999);
  // Bucketed estimate within the 2^(1/4) geometric bucket error bound.
  EXPECT_GT(h.Percentile(0.50), 500.0 * 0.8);
  EXPECT_LT(h.Percentile(0.50), 500.0 * 1.25);
  EXPECT_GE(s.p999, s.p99);
  EXPECT_LE(s.p999, s.max);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Percentile(0.25), h.Percentile(0.75));
}

TEST(HistogramTest, NegativeAndNanClampToZero) {
  obs::Histogram h;
  h.Record(-5.0);
  h.Record(std::nan(""));
  const obs::Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(MetricsRegistryTest, SnapshotJsonParsesAndCarriesValues) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("kdsel.test.snapshot_counter").Reset();
  registry.GetCounter("kdsel.test.snapshot_counter").Increment(41);
  registry.GetGauge("kdsel.test.snapshot_gauge").Set(2.5);
  auto& histogram = registry.GetHistogram("kdsel.test.snapshot_histogram");
  histogram.Reset();
  histogram.Record(10.0);
  histogram.Record(20.0);

  auto parsed = serve::Json::Parse(registry.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const serve::Json* counter =
      parsed->Find("counters")->Find("kdsel.test.snapshot_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->as_number(), 41.0);
  const serve::Json* gauge =
      parsed->Find("gauges")->Find("kdsel.test.snapshot_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->as_number(), 2.5);
  const serve::Json* hist =
      parsed->Find("histograms")->Find("kdsel.test.snapshot_histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->Find("mean")->as_number(), 15.0);
}

TEST(MetricsRegistryTest, RenderPrometheusExposesAllKindsWithMangledNames) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("kdsel.test.prom_counter").Reset();
  registry.GetCounter("kdsel.test.prom_counter").Increment(7);
  registry.GetGauge("kdsel.test.prom_gauge").Set(1.5);
  auto& histogram = registry.GetHistogram("kdsel.test.prom_hist");
  histogram.Reset();
  histogram.Record(100.0);
  histogram.Record(200.0);

  const std::string text = registry.RenderPrometheus();
  // Dots mangle to underscores per the kdsel_<layer>_<name> contract.
  EXPECT_NE(text.find("# TYPE kdsel_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("kdsel_test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE kdsel_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("kdsel_test_prom_gauge 1.5"), std::string::npos);
  // Histograms render as summaries: quantile series plus _sum/_count.
  EXPECT_NE(text.find("# TYPE kdsel_test_prom_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("kdsel_test_prom_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("kdsel_test_prom_hist{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("kdsel_test_prom_hist_count 2"), std::string::npos);
  EXPECT_NE(text.find("kdsel_test_prom_hist_sum 300"), std::string::npos);
  // Exposition format: every line is `name[{labels}] value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(FlightRecorderTest, RingKeepsTailAndSlowestPoolKeepsWorst) {
  obs::FlightRecorder recorder(/*recent_capacity=*/4, /*slowest_capacity=*/2);
  for (int i = 1; i <= 10; ++i) {
    obs::FlightRecord record;
    std::snprintf(record.trace, sizeof(record.trace), "r-%d", i);
    // Request 3 is the all-time slowest; 7 the runner-up.
    record.total_us = (i == 3) ? 9000.0 : (i == 7) ? 5000.0 : 100.0 * i;
    record.compute_us = 10.0 * i;
    recorder.Record(record);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_DOUBLE_EQ(recorder.SlowestTotalUs(), 9000.0);

  // Ring: the last 4 records, oldest first.
  const auto recent = recorder.RecentSnapshot();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_STREQ(recent.front().trace, "r-7");
  EXPECT_STREQ(recent.back().trace, "r-10");

  // Slowest pool: descending by total_us, survives later fast traffic.
  const auto slowest = recorder.SlowestSnapshot();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_STREQ(slowest[0].trace, "r-3");
  EXPECT_DOUBLE_EQ(slowest[0].total_us, 9000.0);
  EXPECT_STREQ(slowest[1].trace, "r-7");
}

TEST(FlightRecorderTest, DumpJsonParsesAndCarriesVerdictsAndStages) {
  obs::FlightRecorder recorder(/*recent_capacity=*/8, /*slowest_capacity=*/4);
  obs::FlightRecord served;
  std::snprintf(served.trace, sizeof(served.trace), "ok-1");
  served.queue_us = 10.0;
  served.batch_wait_us = 20.0;
  served.compute_us = 30.0;
  served.write_us = 40.0;
  served.total_us = 100.0;
  served.int8_variant = true;
  recorder.Record(served);
  obs::FlightRecord refused;
  std::snprintf(refused.trace, sizeof(refused.trace), "shed-1");
  refused.verdict = obs::FlightRecord::Verdict::kShed;
  refused.total_us = 5.0;
  recorder.Record(refused);

  auto parsed = serve::Json::Parse(recorder.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->GetNumber("recorded", 0), 2.0);
  const serve::Json* recent = parsed->Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->items().size(), 2u);
  const serve::Json& first = recent->items()[0];
  EXPECT_EQ(first.GetString("trace", ""), "ok-1");
  EXPECT_EQ(first.GetString("verdict", ""), "ok");
  EXPECT_EQ(first.GetString("variant", ""), "int8");
  EXPECT_DOUBLE_EQ(first.GetNumber("queue_us", 0), 10.0);
  EXPECT_DOUBLE_EQ(first.GetNumber("write_us", 0), 40.0);
  EXPECT_DOUBLE_EQ(first.GetNumber("total_us", 0), 100.0);
  const serve::Json& second = recent->items()[1];
  EXPECT_EQ(second.GetString("verdict", ""), "shed");
  EXPECT_EQ(second.GetString("variant", ""), "fp32");
  // Slowest pool mirrors the same records (both fit).
  const serve::Json* slowest = parsed->Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_EQ(slowest->items().size(), 2u);
  EXPECT_EQ(slowest->items()[0].GetString("trace", ""), "ok-1");
}

TEST(TraceTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(obs::TracingEnabled());
  { KDSEL_SPAN("obs_test.should_not_appear"); }
  for (const obs::TraceEvent& e : obs::CollectTraceEvents()) {
    EXPECT_STRNE(e.name, "obs_test.should_not_appear");
  }
}

TEST(TraceTest, SpanNestingAndThreadAttribution) {
  obs::StartTracing();
  {
    KDSEL_SPAN("obs_test.outer");
    { KDSEL_SPAN("obs_test.inner"); }
  }
  // One span on a second thread: it must carry a different tid.
  std::thread other([] {  // kdsel-lint: allow(raw-thread)
    KDSEL_SPAN("obs_test.other_thread");
  });
  other.join();
  obs::StopTracing();

  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* remote = nullptr;
  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "obs_test.outer") outer = &e;
    if (std::string(e.name) == "obs_test.inner") inner = &e;
    if (std::string(e.name) == "obs_test.other_thread") remote = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(remote, nullptr);
  // Nesting: inner fully contained in outer, same thread.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_NE(remote->tid, outer->tid);
}

TEST(TraceTest, ChromeTraceJsonRoundTrips) {
  obs::StartTracing();
  {
    KDSEL_SPAN("obs_test.export_outer");
    { KDSEL_SPAN("obs_test.export_inner"); }
  }
  obs::StopTracing();

  const std::string path = ::testing::TempDir() + "/kdsel_obs_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());

  auto parsed = serve::Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const serve::Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool outer_seen = false, inner_seen = false;
  for (const serve::Json& event : events->items()) {
    EXPECT_EQ(event.Find("ph")->as_string(), "X");
    EXPECT_EQ(event.Find("cat")->as_string(), "kdsel");
    EXPECT_GE(event.Find("ts")->as_number(), 0.0);
    EXPECT_GE(event.Find("dur")->as_number(), 0.0);
    if (event.Find("name")->as_string() == "obs_test.export_outer") {
      outer_seen = true;
    }
    if (event.Find("name")->as_string() == "obs_test.export_inner") {
      inner_seen = true;
    }
  }
  EXPECT_TRUE(outer_seen);
  EXPECT_TRUE(inner_seen);
}

TEST(TraceTest, OverflowDropsNewestAndCounts) {
  obs::StartTracing();
  // More spans than one thread's buffer holds (32768): the excess must
  // be counted as dropped, not crash or overwrite.
  constexpr size_t kSpans = 40000;
  for (size_t i = 0; i < kSpans; ++i) {
    KDSEL_SPAN("obs_test.flood");
  }
  obs::StopTracing();
  EXPECT_GE(obs::DroppedTraceEvents(), kSpans - 32768);
  // A fresh StartTracing rewinds both the buffers and the counter.
  obs::StartTracing();
  obs::StopTracing();
  EXPECT_EQ(obs::DroppedTraceEvents(), 0u);
}

TEST(TraceTest, WriteToUnwritablePathFails) {
  const Status status = obs::WriteChromeTrace("/no/such/dir/trace.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace kdsel
