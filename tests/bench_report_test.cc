// BenchReport JSON contract, focused on the speedup column: entries
// whose workload was never measured at threads == 1 must OMIT
// "speedup_vs_1t" from the JSON instead of emitting 0/inf garbage that
// downstream diffs would read as a real ratio.

#include <gtest/gtest.h>

#include <string>

#include "bench/bench_report.h"
#include "serve/json.h"

namespace kdsel::bench {
namespace {

BenchEntry Entry(std::string name, size_t threads, double wall) {
  BenchEntry e;
  e.name = std::move(name);
  e.threads = threads;
  e.wall_seconds = wall;
  return e;
}

const serve::Json* FindRow(const serve::Json& root, const std::string& name,
                           size_t threads) {
  const serve::Json* entries = root.Find("entries");
  if (entries == nullptr) return nullptr;
  for (const serve::Json& row : entries->items()) {
    if (row.GetString("name", "") == name &&
        row.GetNumber("threads", -1) == static_cast<double>(threads)) {
      return &row;
    }
  }
  return nullptr;
}

TEST(BenchReportTest, ComputeSpeedupsFillsOnlyBaselinedWorkloads) {
  BenchReport report("test");
  report.Add(Entry("with_baseline", 1, 0.4));
  report.Add(Entry("with_baseline", 4, 0.1));
  report.Add(Entry("no_baseline", 4, 0.2));   // Never measured at 1 thread.
  report.Add(Entry("zero_wall", 1, 0.0));     // Degenerate baseline.
  report.Add(Entry("zero_wall", 2, 0.1));
  report.ComputeSpeedups();

  const auto& entries = report.entries();
  EXPECT_DOUBLE_EQ(entries[0].speedup_vs_1t, 1.0);
  EXPECT_DOUBLE_EQ(entries[1].speedup_vs_1t, 4.0);
  EXPECT_DOUBLE_EQ(entries[2].speedup_vs_1t, 0.0);
  // A zero-wall 1-thread row is not a usable baseline: no inf ratios.
  EXPECT_DOUBLE_EQ(entries[3].speedup_vs_1t, 0.0);
  EXPECT_DOUBLE_EQ(entries[4].speedup_vs_1t, 0.0);
}

TEST(BenchReportTest, JsonOmitsSpeedupWithoutBaseline) {
  BenchReport report("test");
  report.Add(Entry("with_baseline", 1, 0.4));
  report.Add(Entry("with_baseline", 4, 0.1));
  report.Add(Entry("no_baseline", 4, 0.2));
  report.ComputeSpeedups();

  auto parsed = serve::Json::Parse(report.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const serve::Json* baselined = FindRow(*parsed, "with_baseline", 4);
  ASSERT_NE(baselined, nullptr);
  EXPECT_EQ(baselined->GetNumber("speedup_vs_1t", -1.0), 4.0);

  const serve::Json* unbaselined = FindRow(*parsed, "no_baseline", 4);
  ASSERT_NE(unbaselined, nullptr);
  EXPECT_EQ(unbaselined->Find("speedup_vs_1t"), nullptr)
      << "speedup must be omitted, not emitted as a junk number: "
      << unbaselined->Dump();
}

TEST(BenchReportTest, JsonCarriesItemsAndMetrics) {
  BenchReport report("test");
  BenchEntry e = Entry("kernel", 1, 0.5);
  e.items = 100.0;
  e.items_unit = "calls";
  e.metrics["speedup_vs_fp32"] = 2.5;
  report.Add(std::move(e));

  auto parsed = serve::Json::Parse(report.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("bench", ""), "test");
  const serve::Json* row = FindRow(*parsed, "kernel", 1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->GetNumber("items_per_second", -1.0), 200.0);
  const serve::Json* metrics = row->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->GetNumber("speedup_vs_fp32", -1.0), 2.5);
}

}  // namespace
}  // namespace kdsel::bench
