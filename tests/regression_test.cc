// Cross-module regression tests for behaviours that earlier bugs (or
// likely future refactors) could silently break: checkpoint round-trips
// per backbone (batch-norm running stats!), batch-norm train/eval
// consistency, attention's token mixing, and pruner parameter edges.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.h"
#include "core/pruning.h"
#include "core/trainer.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "selectors/backbone.h"

namespace kdsel {
namespace {

core::SelectorTrainingData TinyTask(uint64_t seed, size_t window = 32) {
  Rng rng(seed);
  core::SelectorTrainingData data;
  data.num_classes = 2;
  for (int i = 0; i < 24; ++i) {
    std::vector<float> w(window);
    int c = i % 2;
    for (size_t t = 0; t < window; ++t) {
      w[t] = static_cast<float>(std::sin((c ? 1.2 : 0.3) * t) +
                                0.05 * rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  return data;
}

/// Save/load must round-trip for every backbone, including the ones
/// with non-trainable state (batch-norm running statistics).
class CheckpointRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckpointRoundTripTest, PredictionsSurviveReload) {
  auto data = TinyTask(7);
  core::TrainerOptions opts;
  opts.backbone = GetParam();
  opts.epochs = 3;
  opts.seed = 11;
  auto selector = core::TrainSelector(data, opts, nullptr);
  ASSERT_TRUE(selector.ok()) << selector.status();

  const std::string prefix =
      (std::filesystem::temp_directory_path() / ("kdsel_rt_" + GetParam()))
          .string();
  ASSERT_TRUE((*selector)->Save(prefix).ok());
  auto loaded = core::TrainedSelector::Load(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  auto p1 = (*selector)->Predict(data.windows);
  auto p2 = (*loaded)->Predict(data.windows);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);

  // Logits must match exactly, not just argmax (catches partially
  // restored state like missed BN running stats).
  auto l1 = (*selector)->Logits(data.windows);
  auto l2 = (*loaded)->Logits(data.windows);
  ASSERT_TRUE(l1.ok() && l2.ok());
  for (size_t i = 0; i < l1->size(); ++i) {
    EXPECT_FLOAT_EQ((*l1)[i], (*l2)[i]) << "logit " << i;
  }
  std::filesystem::remove(prefix + ".meta");
  std::filesystem::remove(prefix + ".weights");
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, CheckpointRoundTripTest,
                         ::testing::ValuesIn(selectors::BackboneNames()),
                         [](const auto& info) { return info.param; });

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(1);
  nn::BatchNorm1d bn(4, /*momentum=*/0.5);
  nn::Tensor x({256, 4});
  for (float& v : x.mutable_data()) {
    v = static_cast<float>(rng.Normal(3.0, 2.0));
  }
  // Several training passes move the running stats toward (3, 4).
  for (int i = 0; i < 20; ++i) (void)bn.Forward(x, /*training=*/true);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(bn.running_mean()[c], 3.0, 0.8);
    EXPECT_NEAR(bn.running_var()[c], 4.0, 2.0);
  }
  // Eval output for a typical input should be roughly standardized.
  nn::Tensor y = bn.Forward(x, /*training=*/false);
  double mean = 0;
  for (float v : y.data()) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 0.0, 0.3);
}

TEST(BatchNormTest, TrainAndEvalAgreeOnLargeBatchAfterConvergence) {
  Rng rng(2);
  nn::BatchNorm1d bn(2, /*momentum=*/0.2);
  nn::Tensor x({64, 2});
  for (float& v : x.mutable_data()) v = static_cast<float>(rng.Normal());
  for (int i = 0; i < 60; ++i) (void)bn.Forward(x, true);
  nn::Tensor train_out = bn.Forward(x, true);
  nn::Tensor eval_out = bn.Forward(x, false);
  double max_diff = 0;
  for (size_t i = 0; i < train_out.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(double(train_out[i]) - eval_out[i]));
  }
  EXPECT_LT(max_diff, 0.1);  // Running stats converged to batch stats.
}

TEST(AttentionTest, OutputDependsOnOtherTokens) {
  Rng rng(3);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  nn::Tensor x({1, 4, 8});
  for (float& v : x.mutable_data()) v = static_cast<float>(rng.Normal());
  nn::Tensor y1 = attn.Forward(x, false);
  // Perturb token 3 only; token 0's output must change (mixing).
  nn::Tensor x2 = x;
  for (size_t d = 0; d < 8; ++d) x2.At(0, 3, d) += 1.0f;
  nn::Tensor y2 = attn.Forward(x2, false);
  double diff_token0 = 0;
  for (size_t d = 0; d < 8; ++d) {
    diff_token0 += std::abs(y1.At(0, 0, d) - y2.At(0, 0, d));
  }
  EXPECT_GT(diff_token0, 1e-4);
}

TEST(PrunerRegressionTest, ZeroPruneRatioKeepsEverything) {
  core::PrunerOptions opts;
  opts.mode = core::PruningMode::kInfoBatch;
  opts.prune_ratio = 0.0;
  opts.anneal_fraction = 0.0;
  core::Pruner pruner(opts, 50, {});
  for (size_t i = 0; i < 50; ++i) pruner.RecordLoss(i, 0.01 * double(i));
  auto plan = pruner.PlanEpoch(3, 100);
  EXPECT_EQ(plan.kept.size(), 50u);
  for (float w : plan.weights) EXPECT_FLOAT_EQ(w, 1.0f);
}

TEST(PrunerRegressionTest, SingleBinPaStillWorks) {
  Rng rng(4);
  std::vector<std::vector<float>> samples(40, std::vector<float>(8));
  for (auto& s : samples) {
    for (float& v : s) v = static_cast<float>(rng.Normal());
  }
  core::PrunerOptions opts;
  opts.mode = core::PruningMode::kPa;
  opts.num_bins = 1;
  opts.anneal_fraction = 0.0;
  core::Pruner pruner(opts, 40, samples);
  for (size_t i = 0; i < 40; ++i) pruner.RecordLoss(i, rng.Uniform());
  auto plan = pruner.PlanEpoch(2, 100);
  EXPECT_GT(plan.kept.size(), 0u);
  EXPECT_LE(plan.kept.size(), 40u);
}

TEST(PrunerRegressionTest, PaWithHighBitsBehavesLikeInfoBatchOnDistinctData) {
  // With 64-bit signatures, random samples land in singleton buckets:
  // PA must then keep every high-loss sample, exactly like InfoBatch.
  Rng rng(5);
  std::vector<std::vector<float>> samples(200, std::vector<float>(16));
  for (auto& s : samples) {
    for (float& v : s) v = static_cast<float>(rng.Normal());
  }
  core::PrunerOptions pa_opts;
  pa_opts.mode = core::PruningMode::kPa;
  pa_opts.lsh_bits = 64;
  pa_opts.anneal_fraction = 0.0;
  pa_opts.seed = 7;
  core::Pruner pa(pa_opts, 200, samples);
  core::PrunerOptions ib_opts = pa_opts;
  ib_opts.mode = core::PruningMode::kInfoBatch;
  core::Pruner ib(ib_opts, 200, samples);
  for (size_t i = 0; i < 200; ++i) {
    double loss = rng.Uniform();
    pa.RecordLoss(i, loss);
    ib.RecordLoss(i, loss);
  }
  auto pa_plan = pa.PlanEpoch(1, 1000);
  auto ib_plan = ib.PlanEpoch(1, 1000);
  // High-loss sample sets must agree exactly (weight-1 members).
  std::set<size_t> pa_high, ib_high;
  for (size_t k = 0; k < pa_plan.kept.size(); ++k) {
    if (pa_plan.weights[k] == 1.0f) pa_high.insert(pa_plan.kept[k]);
  }
  for (size_t k = 0; k < ib_plan.kept.size(); ++k) {
    if (ib_plan.weights[k] == 1.0f) ib_high.insert(ib_plan.kept[k]);
  }
  EXPECT_EQ(pa_high, ib_high);
}

TEST(TrainerRegressionTest, StatsVisitCountsAreExact) {
  auto data = TinyTask(9);
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 4;
  opts.batch_size = 8;
  core::TrainStats stats;
  auto selector = core::TrainSelector(data, opts, &stats);
  ASSERT_TRUE(selector.ok());
  EXPECT_EQ(stats.full_dataset_visits, 4u * 24u);
  EXPECT_EQ(stats.samples_visited, 4u * 24u);  // no pruning
  EXPECT_EQ(stats.epoch_loss.size(), 4u);
}

}  // namespace
}  // namespace kdsel
