#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/anomaly_injector.h"
#include "datagen/benchmark.h"
#include "datagen/families.h"

namespace kdsel::datagen {
namespace {

TEST(FamilyTest, SixteenFamilies) {
  EXPECT_EQ(AllFamilies().size(), 16u);
}

TEST(FamilyTest, NamesUniqueAndRoundTrip) {
  std::set<std::string> names;
  for (Family f : AllFamilies()) {
    std::string name = FamilyName(f);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    auto parsed = FamilyFromName(name);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
}

TEST(FamilyTest, FromNameCaseInsensitive) {
  auto f = FamilyFromName("ecg");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, Family::kEcg);
}

TEST(FamilyTest, FromNameUnknown) {
  EXPECT_FALSE(FamilyFromName("NotADataset").ok());
}

TEST(FamilyTest, DescriptionsNonEmpty) {
  for (Family f : AllFamilies()) {
    EXPECT_GT(std::string(FamilyDescription(f)).size(), 20u);
  }
}

/// Parameterized over all 16 families: generated series are valid.
class FamilyGenerationTest : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyGenerationTest, GeneratesLabeledFiniteSeries) {
  Rng rng(17);
  auto series = GenerateSeries(GetParam(), 600, 0, rng);
  ASSERT_TRUE(series.ok()) << series.status();
  EXPECT_EQ(series->length(), 600u);
  ASSERT_TRUE(series->has_labels());
  EXPECT_EQ(series->labels().size(), 600u);
  for (float v : series->values()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(series->GetMeta("dataset"), FamilyName(GetParam()));
  EXPECT_FALSE(series->GetMeta("domain").empty());
}

TEST_P(FamilyGenerationTest, DeterministicForSameSeed) {
  Rng rng1(5), rng2(5);
  auto a = GenerateSeries(GetParam(), 400, 0, rng1);
  auto b = GenerateSeries(GetParam(), 400, 0, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->length(); ++i) {
    EXPECT_FLOAT_EQ(a->value(i), b->value(i));
  }
  EXPECT_EQ(a->labels(), b->labels());
}

TEST_P(FamilyGenerationTest, SignalHasVariation) {
  Rng rng(23);
  auto base = GenerateBaseSignal(GetParam(), 500, rng);
  ASSERT_EQ(base.size(), 500u);
  float lo = base[0], hi = base[0];
  for (float v : base) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 1e-3f) << "base signal is flat";
}

TEST_P(FamilyGenerationTest, AnomalyCountWithinPlanBounds) {
  InjectionPlan plan = FamilyInjectionPlan(GetParam());
  EXPECT_GE(plan.min_count, 1u);
  EXPECT_LE(plan.min_count, plan.max_count);
  EXPECT_FALSE(plan.candidates.empty());
  Rng rng(31);
  auto series = GenerateSeries(GetParam(), 800, 0, rng);
  ASSERT_TRUE(series.ok());
  // Injection can place fewer anomalies than planned (overlap rejection)
  // but never more than max_count regions.
  EXPECT_LE(series->AnomalyRegions().size(), plan.max_count);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyGenerationTest, ::testing::ValuesIn(AllFamilies()),
    [](const ::testing::TestParamInfo<Family>& info) {
      return std::string(FamilyName(info.param));
    });

TEST(InjectorTest, MarksInjectedRegions) {
  Rng rng(3);
  ts::TimeSeries series("x", std::vector<float>(500, 0.0f));
  for (size_t i = 0; i < 500; ++i) {
    series.mutable_values()[i] = static_cast<float>(std::sin(i * 0.1));
  }
  InjectionPlan plan;
  plan.candidates = {{AnomalyType::kSpike, 2, 5, 5.0}};
  plan.min_count = 2;
  plan.max_count = 2;
  auto injected = InjectAnomalies(plan, rng, series);
  ASSERT_TRUE(injected.ok());
  EXPECT_EQ(*injected, 2u);
  EXPECT_EQ(series.AnomalyRegions().size(), 2u);
}

TEST(InjectorTest, SpikesActuallyDeviate) {
  Rng rng(3);
  ts::TimeSeries series("x", std::vector<float>(400, 0.0f));
  for (size_t i = 0; i < 400; ++i) {
    series.mutable_values()[i] = static_cast<float>(std::sin(i * 0.2));
  }
  InjectionPlan plan;
  plan.candidates = {{AnomalyType::kSpike, 3, 3, 6.0}};
  plan.min_count = 1;
  plan.max_count = 1;
  ASSERT_TRUE(InjectAnomalies(plan, rng, series).ok());
  auto regions = series.AnomalyRegions();
  ASSERT_EQ(regions.size(), 1u);
  for (size_t i = regions[0].begin; i < regions[0].end; ++i) {
    EXPECT_GT(std::abs(series.value(i)), 2.0f);
  }
}

TEST(InjectorTest, NoneProbabilityYieldsCleanSeries) {
  InjectionPlan plan;
  plan.candidates = {{AnomalyType::kSpike, 1, 2, 3.0}};
  plan.none_probability = 1.0;
  Rng rng(3);
  ts::TimeSeries series("x", std::vector<float>(200, 1.0f));
  auto injected = InjectAnomalies(plan, rng, series);
  ASSERT_TRUE(injected.ok());
  EXPECT_EQ(*injected, 0u);
  EXPECT_TRUE(series.has_labels());
  EXPECT_EQ(series.AnomalyRegions().size(), 0u);
}

TEST(InjectorTest, RejectsShortSeries) {
  InjectionPlan plan;
  plan.candidates = {{AnomalyType::kSpike, 1, 2, 3.0}};
  Rng rng(3);
  ts::TimeSeries series("x", std::vector<float>(8, 1.0f));
  EXPECT_FALSE(InjectAnomalies(plan, rng, series).ok());
}

TEST(InjectorTest, RejectsEmptyPlan) {
  InjectionPlan plan;
  Rng rng(3);
  ts::TimeSeries series("x", std::vector<float>(100, 1.0f));
  EXPECT_FALSE(InjectAnomalies(plan, rng, series).ok());
}

TEST(InjectorTest, AnomalyTypeNames) {
  EXPECT_STREQ(AnomalyTypeToString(AnomalyType::kSpike), "spike");
  EXPECT_STREQ(AnomalyTypeToString(AnomalyType::kSegmentSwap),
               "segment_swap");
}

TEST(BenchmarkTest, GeneratesAllDatasets) {
  BenchmarkOptions opts;
  opts.series_per_family = 2;
  opts.min_length = 128;
  opts.max_length = 160;
  auto benchmark = GenerateBenchmark(opts);
  ASSERT_TRUE(benchmark.ok());
  ASSERT_EQ(benchmark->size(), 16u);
  for (const auto& ds : *benchmark) {
    EXPECT_EQ(ds.series.size(), 2u);
    for (const auto& s : ds.series) {
      EXPECT_GE(s.length(), 128u);
      EXPECT_LE(s.length(), 160u);
    }
  }
}

TEST(BenchmarkTest, RejectsBadOptions) {
  BenchmarkOptions opts;
  opts.series_per_family = 0;
  EXPECT_FALSE(GenerateBenchmark(opts).ok());
  opts.series_per_family = 1;
  opts.min_length = 200;
  opts.max_length = 100;
  EXPECT_FALSE(GenerateBenchmark(opts).ok());
}

TEST(BenchmarkTest, DeterministicAcrossCalls) {
  BenchmarkOptions opts;
  opts.series_per_family = 1;
  opts.min_length = 128;
  opts.max_length = 128;
  auto a = GenerateBenchmark(opts);
  auto b = GenerateBenchmark(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t d = 0; d < a->size(); ++d) {
    ASSERT_EQ((*a)[d].series.size(), (*b)[d].series.size());
    for (size_t i = 0; i < (*a)[d].series[0].length(); ++i) {
      EXPECT_FLOAT_EQ((*a)[d].series[0].value(i), (*b)[d].series[0].value(i));
    }
  }
}

TEST(MetadataTextTest, FollowsPaperTemplate) {
  Rng rng(2);
  auto series = GenerateSeries(Family::kEcg, 500, 3, rng);
  ASSERT_TRUE(series.ok());
  std::string text = BuildMetadataText(*series);
  EXPECT_NE(text.find("This is a time series from dataset ECG"),
            std::string::npos);
  EXPECT_NE(text.find("The length of the series is 500."), std::string::npos);
  EXPECT_NE(text.find("anomalies in this series."), std::string::npos);
  if (series->NumAnomalies() > 0) {
    EXPECT_NE(text.find("The lengths of the anomalies are"),
              std::string::npos);
  }
}

TEST(MetadataTextTest, OmitsLengthSentenceWhenClean) {
  ts::TimeSeries series("clean", std::vector<float>(100, 1.0f));
  ASSERT_TRUE(series.SetLabels(std::vector<uint8_t>(100, 0)).ok());
  series.SetMeta("dataset", "YAHOO");
  series.SetMeta("domain", "test domain");
  std::string text = BuildMetadataText(series);
  EXPECT_NE(text.find("There are 0 anomalies"), std::string::npos);
  EXPECT_EQ(text.find("The lengths of the anomalies"), std::string::npos);
}

}  // namespace
}  // namespace kdsel::datagen
