#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "metrics/metrics.h"

namespace kdsel::metrics {
namespace {

TEST(AucPrTest, PerfectRankingIsOne) {
  std::vector<float> scores{0.9f, 0.8f, 0.1f, 0.2f};
  std::vector<uint8_t> labels{1, 1, 0, 0};
  auto auc = AucPr(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
}

TEST(AucPrTest, WorstRankingApproachesPrevalenceTail) {
  std::vector<float> scores{0.1f, 0.2f, 0.9f, 0.8f};
  std::vector<uint8_t> labels{1, 1, 0, 0};
  auto auc = AucPr(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_LT(*auc, 0.6);
}

TEST(AucPrTest, KnownHandComputedValue) {
  // Descending score order labels: 1, 0, 1, 0.
  // After rank1: R=1/2, P=1 -> AP += 0.5*1
  // After rank3: R=1, P=2/3 -> AP += 0.5*(2/3)
  std::vector<float> scores{0.9f, 0.8f, 0.7f, 0.6f};
  std::vector<uint8_t> labels{1, 0, 1, 0};
  auto auc = AucPr(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_NEAR(*auc, 0.5 + 0.5 * (2.0 / 3.0), 1e-9);
}

TEST(AucPrTest, NoPositivesIsZero) {
  std::vector<float> scores{0.1f, 0.2f};
  std::vector<uint8_t> labels{0, 0};
  auto auc = AucPr(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.0);
}

TEST(AucPrTest, AllPositivesIsOne) {
  std::vector<float> scores{0.1f, 0.9f};
  std::vector<uint8_t> labels{1, 1};
  auto auc = AucPr(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
}

TEST(AucPrTest, TiesCollapse) {
  // All scores equal: single PR point, P = prevalence, R = 1.
  std::vector<float> scores{0.5f, 0.5f, 0.5f, 0.5f};
  std::vector<uint8_t> labels{1, 0, 0, 0};
  auto auc = AucPr(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_NEAR(*auc, 0.25, 1e-9);
}

TEST(AucPrTest, RejectsMismatchedLengths) {
  EXPECT_FALSE(AucPr({0.5f}, {1, 0}).ok());
  EXPECT_FALSE(AucPr({}, {}).ok());
}

TEST(AucPrTest, RejectsNan) {
  EXPECT_FALSE(
      AucPr({std::nanf(""), 0.5f}, std::vector<uint8_t>{1, 0}).ok());
}

TEST(AucRocTest, PerfectAndWorst) {
  std::vector<uint8_t> labels{1, 1, 0, 0};
  auto perfect = AucRoc({0.9f, 0.8f, 0.2f, 0.1f}, labels);
  ASSERT_TRUE(perfect.ok());
  EXPECT_DOUBLE_EQ(*perfect, 1.0);
  auto worst = AucRoc({0.1f, 0.2f, 0.8f, 0.9f}, labels);
  ASSERT_TRUE(worst.ok());
  EXPECT_DOUBLE_EQ(*worst, 0.0);
}

TEST(AucRocTest, TiesScoreHalf) {
  std::vector<float> scores{0.5f, 0.5f};
  std::vector<uint8_t> labels{1, 0};
  auto auc = AucRoc(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.5);
}

TEST(AucRocTest, DegenerateLabelsGiveHalf) {
  auto auc = AucRoc({0.1f, 0.9f}, std::vector<uint8_t>{0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.5);
}

TEST(AucRocTest, RandomScoresNearHalf) {
  Rng rng(3);
  const size_t n = 4000;
  std::vector<float> scores(n);
  std::vector<uint8_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.3);
  }
  auto auc = AucRoc(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_NEAR(*auc, 0.5, 0.03);
}

TEST(BestF1Test, PerfectSeparationIsOne) {
  auto f1 = BestF1({0.9f, 0.8f, 0.1f}, std::vector<uint8_t>{1, 1, 0});
  ASSERT_TRUE(f1.ok());
  EXPECT_DOUBLE_EQ(*f1, 1.0);
}

TEST(BestF1Test, KnownValue) {
  // Best threshold takes the top score only: P=1, R=0.5, F1=2/3.
  // Taking top-3: P=2/3, R=1, F1=0.8 -> best is 0.8.
  auto f1 = BestF1({0.9f, 0.5f, 0.6f}, std::vector<uint8_t>{1, 1, 0});
  ASSERT_TRUE(f1.ok());
  EXPECT_NEAR(*f1, 0.8, 1e-9);
}

TEST(PrecisionRecallCurveTest, MonotoneRecall) {
  Rng rng(1);
  std::vector<float> scores(200);
  std::vector<uint8_t> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.2);
  }
  auto curve = PrecisionRecallCurve(scores, labels);
  ASSERT_TRUE(curve.ok());
  double prev = -1.0;
  for (const auto& p : *curve) {
    EXPECT_GE(p.recall, prev);
    EXPECT_GE(p.precision, 0.0);
    EXPECT_LE(p.precision, 1.0);
    prev = p.recall;
  }
  EXPECT_NEAR(curve->back().recall, 1.0, 1e-12);
}

TEST(AccuracyTest, Basics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({1}, {1, 2}), 0.0);
}

/// Property: AUC metrics are invariant under strictly-increasing
/// monotone transforms of the scores.
class MonotoneInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotoneInvarianceTest, AucInvariantUnderMonotoneTransform) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = 300;
  std::vector<float> scores(n);
  std::vector<uint8_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform(-3, 3));
    labels[i] = rng.Bernoulli(0.25);
  }
  if (std::count(labels.begin(), labels.end(), 1) == 0) labels[0] = 1;
  std::vector<float> transformed(n);
  for (size_t i = 0; i < n; ++i) {
    transformed[i] = std::exp(0.5f * scores[i]) + 2.0f;  // monotone
  }
  auto a1 = AucPr(scores, labels);
  auto a2 = AucPr(transformed, labels);
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_NEAR(*a1, *a2, 1e-6);
  auto r1 = AucRoc(scores, labels);
  auto r2 = AucRoc(transformed, labels);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NEAR(*r1, *r2, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneInvarianceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace kdsel::metrics
