#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/tensor.h"

namespace kdsel::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
  t.Fill(-1.0f);
  for (float v : t.data()) EXPECT_EQ(v, -1.0f);
}

TEST(TensorTest, At2DAnd3D) {
  Tensor t({2, 3});
  t.At(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  Tensor u({2, 3, 4});
  u.At(1, 2, 3) = 9.0f;
  EXPECT_EQ(u[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor r = t.Reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r.dim(1), 4u);
  for (size_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], t[i]);
}

TEST(TensorTest, InPlaceOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a[0], 11.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a[2], 66.0f);
  a.AxpyInPlace(0.5f, b);
  EXPECT_EQ(a[1], 44.0f + 10.0f);
}

TEST(TensorTest, SquaredL2Norm) {
  Tensor t({2}, {3, 4});
  EXPECT_DOUBLE_EQ(t.SquaredL2Norm(), 25.0);
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ShapeString(), "[2,3,4]");
}

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(1);
  Tensor a({5, 7}), b({7, 4});
  for (float& v : a.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : b.mutable_data()) v = static_cast<float>(rng.Normal());
  Tensor c = MatMul(a, b);
  // A * B == A *T (B^T)
  Tensor bt = Transpose2D(b);
  Tensor c2 = MatMulTransposedB(a, bt);
  ASSERT_TRUE(SameShape(c, c2));
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], c2[i], 1e-4f);
  // A * B == (A^T)^T * B via MatMulTransposedA
  Tensor at = Transpose2D(a);
  Tensor c3 = MatMulTransposedA(at, b);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], c3[i], 1e-4f);
}

TEST(MatMulTest, LargeMatricesMatchNaive) {
  // Exercises the multithreaded path (work above the parallel cutoff).
  Rng rng(2);
  const size_t n = 64, k = 96, m = 48;
  Tensor a({n, k}), b({k, m});
  for (float& v : a.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : b.mutable_data()) v = static_cast<float>(rng.Normal());
  Tensor c = MatMul(a, b);
  for (size_t checks = 0; checks < 50; ++checks) {
    size_t i = rng.Index(n), j = rng.Index(m);
    double acc = 0.0;
    for (size_t kk = 0; kk < k; ++kk) {
      acc += static_cast<double>(a[i * k + kk]) * b[kk * m + j];
    }
    EXPECT_NEAR(c[i * m + j], acc, 1e-3);
  }
}

TEST(TransposeTest, RoundTrip) {
  Rng rng(3);
  Tensor a({4, 6});
  for (float& v : a.mutable_data()) v = static_cast<float>(rng.Normal());
  Tensor back = Transpose2D(Transpose2D(a));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], back[i]);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor logits({3, 5});
  Rng rng(4);
  for (float& v : logits.mutable_data()) {
    v = static_cast<float>(rng.Uniform(-10, 10));
  }
  Tensor p = SoftmaxRows(logits);
  for (size_t i = 0; i < 3; ++i) {
    double sum = 0;
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_GT(p.At(i, j), 0.0f);
      sum += p.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Tensor logits({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor p = SoftmaxRows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[0], p[2]);
}

TEST(SoftmaxTest, UniformLogitsUniformOutput) {
  Tensor logits({1, 4}, {2.0f, 2.0f, 2.0f, 2.0f});
  Tensor p = SoftmaxRows(logits);
  for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(p[j], 0.25f, 1e-6f);
}

TEST(AddTest, ElementwiseSum) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = Add(a, b);
  EXPECT_EQ(c[0], 6.0f);
  EXPECT_EQ(c[3], 12.0f);
}

}  // namespace
}  // namespace kdsel::nn
