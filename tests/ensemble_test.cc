#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/check.h"
#include "tsad/detector.h"
#include "tsad/ensemble.h"

namespace kdsel::tsad {
namespace {

/// A stub detector returning a fixed score vector (or an error).
class StubDetector : public Detector {
 public:
  StubDetector(std::string name, std::vector<float> scores, bool fail = false)
      : name_(std::move(name)), scores_(std::move(scores)), fail_(fail) {}

  std::string name() const override { return name_; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override {
    if (fail_) return Status::InvalidArgument("stub failure");
    KDSEL_CHECK(series.length() == scores_.size());
    return scores_;
  }

 private:
  std::string name_;
  std::vector<float> scores_;
  bool fail_;
};

ts::TimeSeries FourPointSeries() {
  return ts::TimeSeries("x", {0.0f, 0.0f, 0.0f, 0.0f});
}

std::vector<std::unique_ptr<Detector>> TwoStubs() {
  // After min-max normalization: a -> {0, 1, 0.5, 0}, b -> {1, 0, 0.5, 0}.
  std::vector<std::unique_ptr<Detector>> members;
  members.push_back(
      std::make_unique<StubDetector>("a", std::vector<float>{0, 2, 1, 0}));
  members.push_back(
      std::make_unique<StubDetector>("b", std::vector<float>{4, 0, 2, 0}));
  return members;
}

TEST(EnsembleTest, MeanCombinesNormalizedScores) {
  EnsembleDetector ensemble(TwoStubs(), EnsembleDetector::Combine::kMean);
  EXPECT_EQ(ensemble.name(), "Ensemble-mean");
  EXPECT_EQ(ensemble.size(), 2u);
  auto scores = ensemble.Score(FourPointSeries());
  ASSERT_TRUE(scores.ok());
  EXPECT_FLOAT_EQ((*scores)[0], 0.5f);
  EXPECT_FLOAT_EQ((*scores)[1], 0.5f);
  EXPECT_FLOAT_EQ((*scores)[2], 0.5f);
  EXPECT_FLOAT_EQ((*scores)[3], 0.0f);
}

TEST(EnsembleTest, MaxTakesPointwiseMaximum) {
  EnsembleDetector ensemble(TwoStubs(), EnsembleDetector::Combine::kMax);
  auto scores = ensemble.Score(FourPointSeries());
  ASSERT_TRUE(scores.ok());
  EXPECT_FLOAT_EQ((*scores)[0], 1.0f);
  EXPECT_FLOAT_EQ((*scores)[1], 1.0f);
  EXPECT_FLOAT_EQ((*scores)[2], 0.5f);
  EXPECT_FLOAT_EQ((*scores)[3], 0.0f);
}

TEST(EnsembleTest, MedianOfThreeMembers) {
  std::vector<std::unique_ptr<Detector>> members;
  members.push_back(
      std::make_unique<StubDetector>("a", std::vector<float>{0, 1, 0, 0}));
  members.push_back(
      std::make_unique<StubDetector>("b", std::vector<float>{0, 1, 1, 0}));
  members.push_back(
      std::make_unique<StubDetector>("c", std::vector<float>{1, 0, 1, 0}));
  EnsembleDetector ensemble(std::move(members),
                            EnsembleDetector::Combine::kMedian);
  auto scores = ensemble.Score(FourPointSeries());
  ASSERT_TRUE(scores.ok());
  EXPECT_FLOAT_EQ((*scores)[0], 0.0f);  // median(0,0,1)
  EXPECT_FLOAT_EQ((*scores)[1], 1.0f);  // median(1,1,0)
  EXPECT_FLOAT_EQ((*scores)[2], 1.0f);  // median(0,1,1)
}

TEST(EnsembleTest, SkipsFailingMembers) {
  std::vector<std::unique_ptr<Detector>> members;
  members.push_back(std::make_unique<StubDetector>(
      "broken", std::vector<float>{}, /*fail=*/true));
  members.push_back(
      std::make_unique<StubDetector>("ok", std::vector<float>{0, 2, 1, 0}));
  EnsembleDetector ensemble(std::move(members),
                            EnsembleDetector::Combine::kMean);
  auto scores = ensemble.Score(FourPointSeries());
  ASSERT_TRUE(scores.ok());
  EXPECT_FLOAT_EQ((*scores)[1], 1.0f);  // normalized "ok" member alone
}

TEST(EnsembleTest, AllMembersFailingIsError) {
  std::vector<std::unique_ptr<Detector>> members;
  members.push_back(std::make_unique<StubDetector>(
      "broken", std::vector<float>{}, /*fail=*/true));
  EnsembleDetector ensemble(std::move(members),
                            EnsembleDetector::Combine::kMean);
  EXPECT_FALSE(ensemble.Score(FourPointSeries()).ok());
}

TEST(EnsembleTest, FullModelSetEnsembleRuns) {
  EnsembleDetector ensemble(BuildDefaultModelSet(3),
                            EnsembleDetector::Combine::kMean);
  std::vector<float> values(300);
  for (size_t i = 0; i < 300; ++i) {
    values[i] = static_cast<float>(std::sin(0.2 * double(i)));
  }
  values[150] += 5.0f;
  ts::TimeSeries series("sine", std::move(values));
  auto scores = ensemble.Score(series);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 300u);
  // The injected spike should be among the highest combined scores.
  float spike = (*scores)[150];
  size_t above = 0;
  for (float s : *scores) above += (s > spike);
  EXPECT_LT(above, 15u);
}

}  // namespace
}  // namespace kdsel::tsad
