// End-to-end tests for tools/kdsel_lint. The binary is run as a
// subprocess (paths injected by CMake via KDSEL_LINT_BIN /
// KDSEL_SOURCE_DIR) against the fixture sources in tests/lint_fixtures/
// and against the real tree in --self-check mode.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef KDSEL_LINT_BIN
#error "KDSEL_LINT_BIN must be defined by the build"
#endif
#ifndef KDSEL_SOURCE_DIR
#error "KDSEL_SOURCE_DIR must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

// Runs the lint binary with `args`, capturing stdout (diagnostics go to
// stdout; the summary line goes to stderr and is not captured).
RunResult RunLint(const std::string& args) {
  RunResult result;
  const std::string command = std::string(KDSEL_LINT_BIN) + " " + args;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.stdout_text.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string FixturePath(const std::string& name) {
  return std::string(KDSEL_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::string RootArgs(const std::string& extra) {
  std::string args = "--root ";
  args += KDSEL_SOURCE_DIR;
  args += " ";
  args += extra;
  return args;
}

TEST(LintTest, ViolationsFixtureProducesExactDiagnostics) {
  const RunResult result = RunLint(RootArgs(FixturePath("violations.cc")));
  EXPECT_EQ(result.exit_code, 1);

  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 9u) << result.stdout_text;

  const std::string prefix = "tests/lint_fixtures/violations.cc:";
  const std::vector<std::string> expected = {
      prefix +
          "21: discarded-status: result of Status-returning call 'DoWork' is "
          "discarded; check it, propagate it with KDSEL_RETURN_NOT_OK, or "
          "assert on it",
      prefix +
          "24: unchecked-value: .value() without a nearby ok()/has_value() "
          "check aborts on error; check first or propagate with "
          "KDSEL_ASSIGN_OR_RETURN",
      prefix +
          "26: naked-new: raw 'new' allocation; use "
          "std::make_unique/std::make_shared or a container",
      prefix +
          "28: raw-parse: 'stol' outside common/: it throws or silently "
          "wraps; use kdsel::ParseUint64 (stringutil.h)",
      prefix +
          "30: nonreproducible-random: unseeded/wall-clock randomness breaks "
          "bit-for-bit reproducibility; use kdsel::Rng with an explicit seed",
      prefix +
          "34: lock-across-score: detector Score() runs while a mutex guard "
          "is live; scoring is slow and must happen off-lock (clone or "
          "snapshot instead)",
      prefix +
          "37: raw-thread: 'std::thread' outside src/common/ and src/serve/ "
          "bypasses the shared pool; use kdsel::ParallelFor or ThreadPool "
          "(common/parallel.h)",
      prefix +
          "40: raw-simd: raw SIMD outside src/nn/kernels/ bypasses runtime "
          "dispatch and the scalar fallback; add a kernel to nn::kernels and "
          "call it through Dispatch()",
      prefix +
          "43: raw-timing: 'steady_clock' outside src/obs/, src/common/ and "
          "bench/; time through obs::Clock/NowNs (obs/clock.h) or record a "
          "span/histogram so all durations share one timebase",
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(lines[i], expected[i]) << "diagnostic " << i;
  }
}

// NDJSON hand-parsing on the streaming wire path is the raw-parse
// rule's marquee catch: strtod/atoi silently accept trailing garbage and
// locale-dependent formats. Stream input must flow through
// serve::Json::Parse + the strict kdsel::Parse* helpers instead.
TEST(LintTest, StreamNdjsonFixtureCatchesHandParsing) {
  const RunResult result = RunLint(RootArgs(FixturePath("stream_ndjson.cc")));
  EXPECT_EQ(result.exit_code, 1);

  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 2u) << result.stdout_text;

  const std::string prefix = "tests/lint_fixtures/stream_ndjson.cc:";
  EXPECT_EQ(lines[0],
            prefix +
                "19: raw-parse: 'strtod' outside common/: it throws or "
                "silently wraps; use kdsel::ParseUint64 (stringutil.h)");
  EXPECT_EQ(lines[1],
            prefix +
                "25: raw-parse: 'atoi' outside common/: it throws or "
                "silently wraps; use kdsel::ParseUint64 (stringutil.h)");
}

TEST(LintTest, SuppressedFixtureIsClean) {
  const RunResult result = RunLint(RootArgs(FixturePath("suppressed.cc")));
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

TEST(LintTest, CleanFixtureIsClean) {
  const RunResult result = RunLint(RootArgs(FixturePath("clean.cc")));
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

// The combined fixture directory scan sees all fixture files at once,
// so cross-file symbol collection (Status function names) must not
// bleed findings between fixtures. Diagnostics sort by file, so the two
// stream_ndjson.cc raw-parse findings precede the nine violations.cc
// ones.
TEST(LintTest, FixtureDirectoryScanMatchesPerFileResults) {
  const RunResult result =
      RunLint(RootArgs(std::string(KDSEL_SOURCE_DIR) + "/tests/lint_fixtures"));
  EXPECT_EQ(result.exit_code, 1);
  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 11u) << result.stdout_text;
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NE(lines[i].find("stream_ndjson.cc"), std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("raw-parse"), std::string::npos) << lines[i];
  }
  for (size_t i = 2; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("violations.cc"), std::string::npos) << lines[i];
  }
}

// The real tree must stay clean: --self-check exits non-zero on any
// finding and refuses suppressions outside tests/.
TEST(LintTest, RealTreeSelfCheckIsClean) {
  const RunResult result = RunLint(RootArgs("--self-check"));
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

// A seeded violation in a temp file under --root must be reported in the
// documented file:line: rule: message format with a non-zero exit.
TEST(LintTest, SeededViolationIsReported) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/kdsel_lint_seeded.cc";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "void Seeded() {\n";
    out << "  int* p = new int(7);\n";
    out << "  *p = rand();\n";
    out << "}\n";
  }
  const RunResult result = RunLint("--root " + dir + " " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 1);
  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 2u) << result.stdout_text;
  EXPECT_NE(lines[0].find("kdsel_lint_seeded.cc:2: naked-new:"),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("kdsel_lint_seeded.cc:3: nonreproducible-random:"),
            std::string::npos)
      << lines[1];
}

TEST(LintTest, ListRulesNamesEveryRule) {
  const RunResult result = RunLint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"discarded-status", "unchecked-value", "naked-new", "raw-parse",
        "nonreproducible-random", "lock-across-score", "raw-thread",
        "raw-simd", "raw-timing"}) {
    EXPECT_NE(result.stdout_text.find(rule), std::string::npos) << rule;
  }
}

TEST(LintTest, UnknownPathExitsWithUsageError) {
  const RunResult result =
      RunLint(RootArgs(std::string(KDSEL_SOURCE_DIR) + "/no/such/file.cc"));
  EXPECT_EQ(result.exit_code, 2);
}

}  // namespace
