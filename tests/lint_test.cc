// End-to-end tests for tools/kdsel_lint. The binary is run as a
// subprocess (paths injected by CMake via KDSEL_LINT_BIN /
// KDSEL_SOURCE_DIR) against the fixture sources in tests/lint_fixtures/
// and against the real tree in --self-check mode.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef KDSEL_LINT_BIN
#error "KDSEL_LINT_BIN must be defined by the build"
#endif
#ifndef KDSEL_SOURCE_DIR
#error "KDSEL_SOURCE_DIR must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

// Runs the lint binary with `args`, capturing stdout (diagnostics go to
// stdout; the summary line goes to stderr and is not captured).
RunResult RunLint(const std::string& args) {
  RunResult result;
  const std::string command = std::string(KDSEL_LINT_BIN) + " " + args;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.stdout_text.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string FixturePath(const std::string& name) {
  return std::string(KDSEL_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::string RootArgs(const std::string& extra) {
  std::string args = "--root ";
  args += KDSEL_SOURCE_DIR;
  args += " ";
  args += extra;
  return args;
}

TEST(LintTest, ViolationsFixtureProducesExactDiagnostics) {
  const RunResult result = RunLint(RootArgs(FixturePath("violations.cc")));
  EXPECT_EQ(result.exit_code, 1);

  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 9u) << result.stdout_text;

  const std::string prefix = "tests/lint_fixtures/violations.cc:";
  const std::vector<std::string> expected = {
      prefix +
          "21: discarded-status: result of Status-returning call 'DoWork' is "
          "discarded; check it, propagate it with KDSEL_RETURN_NOT_OK, or "
          "assert on it",
      prefix +
          "24: unchecked-value: .value() without a nearby ok()/has_value() "
          "check aborts on error; check first or propagate with "
          "KDSEL_ASSIGN_OR_RETURN",
      prefix +
          "26: naked-new: raw 'new' allocation; use "
          "std::make_unique/std::make_shared or a container",
      prefix +
          "28: raw-parse: 'stol' outside common/: it throws or silently "
          "wraps; use kdsel::ParseUint64 (stringutil.h)",
      prefix +
          "30: nonreproducible-random: unseeded/wall-clock randomness breaks "
          "bit-for-bit reproducibility; use kdsel::Rng with an explicit seed",
      prefix +
          "34: lock-across-score: detector Score() runs while a mutex guard "
          "is live; scoring is slow and must happen off-lock (clone or "
          "snapshot instead)",
      prefix +
          "37: raw-thread: 'std::thread' outside src/common/, src/serve/ and "
          "src/net/ bypasses the shared pool; use kdsel::ParallelFor or "
          "ThreadPool (common/parallel.h)",
      prefix +
          "40: raw-simd: raw SIMD outside src/nn/kernels/ bypasses runtime "
          "dispatch and the scalar fallback; add a kernel to nn::kernels and "
          "call it through Dispatch()",
      prefix +
          "43: raw-timing: 'steady_clock' outside src/obs/, src/common/ and "
          "bench/; time through obs::Clock/NowNs (obs/clock.h) or record a "
          "span/histogram so all durations share one timebase",
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(lines[i], expected[i]) << "diagnostic " << i;
  }
}

// NDJSON hand-parsing on the streaming wire path is the raw-parse
// rule's marquee catch: strtod/atoi silently accept trailing garbage and
// locale-dependent formats. Stream input must flow through
// serve::Json::Parse + the strict kdsel::Parse* helpers instead.
TEST(LintTest, StreamNdjsonFixtureCatchesHandParsing) {
  const RunResult result = RunLint(RootArgs(FixturePath("stream_ndjson.cc")));
  EXPECT_EQ(result.exit_code, 1);

  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 2u) << result.stdout_text;

  const std::string prefix = "tests/lint_fixtures/stream_ndjson.cc:";
  EXPECT_EQ(lines[0],
            prefix +
                "19: raw-parse: 'strtod' outside common/: it throws or "
                "silently wraps; use kdsel::ParseUint64 (stringutil.h)");
  EXPECT_EQ(lines[1],
            prefix +
                "25: raw-parse: 'atoi' outside common/: it throws or "
                "silently wraps; use kdsel::ParseUint64 (stringutil.h)");
}

// Ad-hoc socket plumbing outside src/net/ sidesteps the event loop's
// nonblocking setup, backpressure and SLO shedding; the raw-socket rule
// routes it to net::NetServer.
TEST(LintTest, RawSocketFixtureCatchesAdHocSockets) {
  const RunResult result = RunLint(RootArgs(FixturePath("raw_socket.cc")));
  EXPECT_EQ(result.exit_code, 1);

  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 4u) << result.stdout_text;

  const std::string prefix = "tests/lint_fixtures/raw_socket.cc:";
  const std::string tail =
      "' outside src/net/ bypasses the event loop's nonblocking setup, "
      "backpressure and shedding; serve through net::NetServer "
      "(net/server.h)";
  EXPECT_EQ(lines[0], prefix + "17: raw-socket: 'socket" + tail);
  EXPECT_EQ(lines[1], prefix + "19: raw-socket: 'epoll_create1" + tail);
  EXPECT_EQ(lines[2], prefix + "24: raw-socket: 'epoll_ctl" + tail);
  EXPECT_EQ(lines[3], prefix + "25: raw-socket: 'accept4" + tail);
}

// Ad-hoc timestamping in net-layer code: the raw-timing rule catches
// the C-level bypasses (clock_gettime/gettimeofday) alongside the
// std::chrono clocks, so every request stage stamp flows through
// obs::NowNs and shares one steady timebase. Member declarations and
// member calls that merely reuse a syscall's name stay clean.
TEST(LintTest, NetClockFixtureCatchesAdHocTimestamps) {
  const RunResult result = RunLint(RootArgs(FixturePath("net_clock.cc")));
  EXPECT_EQ(result.exit_code, 1);

  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 3u) << result.stdout_text;

  const std::string prefix = "tests/lint_fixtures/net_clock.cc:";
  const std::string call_tail =
      "' outside src/obs/, src/common/ and bench/; stamp through "
      "obs::NowNs (obs/clock.h) so request stage timings share one "
      "steady timebase";
  EXPECT_EQ(lines[0],
            prefix + "21: raw-timing: 'clock_gettime" + call_tail);
  EXPECT_EQ(lines[1], prefix + "28: raw-timing: 'gettimeofday" + call_tail);
  EXPECT_EQ(lines[2],
            prefix +
                "35: raw-timing: 'steady_clock' outside src/obs/, "
                "src/common/ and bench/; time through obs::Clock/NowNs "
                "(obs/clock.h) or record a span/histogram so all durations "
                "share one timebase");
}

TEST(LintTest, SuppressedFixtureIsClean) {
  const RunResult result = RunLint(RootArgs(FixturePath("suppressed.cc")));
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

TEST(LintTest, CleanFixtureIsClean) {
  const RunResult result = RunLint(RootArgs(FixturePath("clean.cc")));
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

// The combined fixture directory scan sees all fixture files at once,
// so cross-file symbol collection (Status names, classes, the call
// graph) must not bleed findings between fixtures. Diagnostics sort by
// file: guarded_by (2), hot_alloc (3), lock_cycle_a (1), lock_cycle_b
// (1), net_clock (3), raw_socket (4), stream_ndjson (2), violations (9)
// -- 25 total.
TEST(LintTest, FixtureDirectoryScanMatchesPerFileResults) {
  const RunResult result =
      RunLint(RootArgs(std::string(KDSEL_SOURCE_DIR) + "/tests/lint_fixtures"));
  EXPECT_EQ(result.exit_code, 1);
  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 25u) << result.stdout_text;
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"guarded_by.cc", "guarded-by"},
      {"guarded_by.cc", "guarded-by"},
      {"hot_alloc.cc", "alloc-in-hot-path"},
      {"hot_alloc.cc", "alloc-in-hot-path"},
      {"hot_alloc.cc", "alloc-in-hot-path"},
      {"lock_cycle_a.cc", "lock-order-inversion"},
      {"lock_cycle_b.cc", "lock-order-inversion"},
      {"net_clock.cc", "raw-timing"},
      {"net_clock.cc", "raw-timing"},
      {"net_clock.cc", "raw-timing"},
      {"raw_socket.cc", "raw-socket"},
      {"raw_socket.cc", "raw-socket"},
      {"raw_socket.cc", "raw-socket"},
      {"raw_socket.cc", "raw-socket"},
      {"stream_ndjson.cc", "raw-parse"},
      {"stream_ndjson.cc", "raw-parse"},
      {"violations.cc", "discarded-status"},
      {"violations.cc", "unchecked-value"},
      {"violations.cc", "naked-new"},
      {"violations.cc", "raw-parse"},
      {"violations.cc", "nonreproducible-random"},
      {"violations.cc", "lock-across-score"},
      {"violations.cc", "raw-thread"},
      {"violations.cc", "raw-simd"},
      {"violations.cc", "raw-timing"},
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NE(lines[i].find(expected[i].first), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find(expected[i].second), std::string::npos)
        << lines[i];
  }
}

// lock-order-inversion: the two fixture halves form a cross-file cycle.
// lock_cycle_a holds gm_first and calls into lock_cycle_b (transitive
// acquisition of gm_second through the call graph); lock_cycle_b nests
// the opposite direct order. Both edges of the cycle are diagnosed,
// each citing the opposite edge's location.
TEST(LintTest, LockCycleFixtureDiagnosesBothEdges) {
  const RunResult result = RunLint(
      RootArgs(FixturePath("lock_cycle_a.cc") + " " +
               FixturePath("lock_cycle_b.cc")));
  EXPECT_EQ(result.exit_code, 1);
  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 2u) << result.stdout_text;
  EXPECT_EQ(lines[0],
            "tests/lint_fixtures/lock_cycle_a.cc:22: lock-order-inversion: "
            "mutex 'gm_second' can be acquired (via call to "
            "'CrossLockSecond') while 'gm_first' is held, but the opposite "
            "order exists at tests/lint_fixtures/lock_cycle_b.cc:22; "
            "establish a single global lock order");
  EXPECT_EQ(lines[1],
            "tests/lint_fixtures/lock_cycle_b.cc:22: lock-order-inversion: "
            "mutex 'gm_first' is acquired while 'gm_second' is held, but "
            "the opposite order exists at "
            "tests/lint_fixtures/lock_cycle_a.cc:22; establish a single "
            "global lock order");
}

// A single consistent order (only lock_cycle_b's ReverseOrder nesting,
// without the opposing file) is NOT an inversion: the rule diagnoses
// cycles, not nesting.
TEST(LintTest, ConsistentLockOrderAloneIsClean) {
  const RunResult result = RunLint(RootArgs(FixturePath("lock_cycle_b.cc")));
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

// guarded-by: a KDSEL_GUARDED_BY member accessed without its mutex and
// a KDSEL_REQUIRES helper called without the lock are both diagnosed;
// the locked accessor and the annotated helper body are not.
TEST(LintTest, GuardedByFixtureProducesExactDiagnostics) {
  const RunResult result = RunLint(RootArgs(FixturePath("guarded_by.cc")));
  EXPECT_EQ(result.exit_code, 1);
  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 2u) << result.stdout_text;
  EXPECT_EQ(lines[0],
            "tests/lint_fixtures/guarded_by.cc:27: guarded-by: member "
            "'hits_' is guarded by 'mu_' (KDSEL_GUARDED_BY) but accessed "
            "without it held; take the lock or annotate the function with "
            "KDSEL_REQUIRES(mu_)");
  EXPECT_EQ(lines[1],
            "tests/lint_fixtures/guarded_by.cc:31: guarded-by: call to "
            "'BumpLocked' requires 'mu_' held (KDSEL_REQUIRES) but it is "
            "not; take the lock before calling");
}

// alloc-in-hot-path: growth with no reserve anywhere, transitive
// reachability through the call graph (HotIngest -> AppendStaging),
// allocating std:: formatting, the KDSEL_ALLOC_OK pruning boundary, and
// the reserve-proven receiver exemption.
TEST(LintTest, HotAllocFixtureProducesExactDiagnostics) {
  const RunResult result = RunLint(RootArgs(FixturePath("hot_alloc.cc")));
  EXPECT_EQ(result.exit_code, 1);
  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 3u) << result.stdout_text;
  EXPECT_EQ(lines[0],
            "tests/lint_fixtures/hot_alloc.cc:22: alloc-in-hot-path: "
            "'push_back' on 'g_staging' allocates (no reserve() for "
            "'g_staging' anywhere in the tree) on the hot path 'HotIngest "
            "-> AppendStaging'; reserve in setup or mark a KDSEL_ALLOC_OK "
            "boundary");
  EXPECT_EQ(lines[1],
            "tests/lint_fixtures/hot_alloc.cc:36: alloc-in-hot-path: "
            "'push_back' on 'ring' allocates (no reserve() for 'ring' "
            "anywhere in the tree) on the hot path 'HotIngest'; reserve in "
            "setup or mark a KDSEL_ALLOC_OK boundary");
  EXPECT_EQ(lines[2],
            "tests/lint_fixtures/hot_alloc.cc:39: alloc-in-hot-path: "
            "'std::to_string' allocates on the hot path 'HotIngest'; hoist "
            "the formatting off the steady-state path or mark a "
            "KDSEL_ALLOC_OK boundary");
}

// The real tree must stay clean: --self-check exits non-zero on any
// finding and refuses suppressions outside tests/.
TEST(LintTest, RealTreeSelfCheckIsClean) {
  const RunResult result = RunLint(RootArgs("--self-check"));
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

// A seeded violation in a temp file under --root must be reported in the
// documented file:line: rule: message format with a non-zero exit.
TEST(LintTest, SeededViolationIsReported) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/kdsel_lint_seeded.cc";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "void Seeded() {\n";
    out << "  int* p = new int(7);\n";
    out << "  *p = rand();\n";
    out << "}\n";
  }
  const RunResult result = RunLint("--root " + dir + " " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 1);
  const std::vector<std::string> lines = SplitLines(result.stdout_text);
  ASSERT_EQ(lines.size(), 2u) << result.stdout_text;
  EXPECT_NE(lines[0].find("kdsel_lint_seeded.cc:2: naked-new:"),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("kdsel_lint_seeded.cc:3: nonreproducible-random:"),
            std::string::npos)
      << lines[1];
}

// --self-check reports wall-clock timing on stderr; with --budget-ms it
// appends the budget and fails the run when exceeded (0 ms always
// trips, since scanning the tree takes at least 1 ms).
TEST(LintTest, SelfCheckReportsTimingAndEnforcesBudget) {
  const RunResult ok = RunLint(RootArgs("--self-check --budget-ms 5000 2>&1"));
  EXPECT_EQ(ok.exit_code, 0) << ok.stdout_text;
  EXPECT_NE(ok.stdout_text.find("full-tree lint took"), std::string::npos)
      << ok.stdout_text;
  EXPECT_NE(ok.stdout_text.find("(budget 5000 ms)"), std::string::npos)
      << ok.stdout_text;

  const RunResult trip = RunLint(RootArgs("--self-check --budget-ms 0 2>&1"));
  EXPECT_EQ(trip.exit_code, 1) << trip.stdout_text;
  EXPECT_NE(trip.stdout_text.find("budget exceeded"), std::string::npos)
      << trip.stdout_text;
}

// --format=json: a machine-readable array with file/line/rule/message
// keys; parse-light smoke check on a fixture with known findings.
TEST(LintTest, JsonFormatEmitsStructuredFindings) {
  const RunResult result =
      RunLint(RootArgs("--format=json " + FixturePath("guarded_by.cc")));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text.compare(0, 2, "[\n"), 0) << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"rule\": \"guarded-by\""),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"line\": 27"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"file\": "
                                    "\"tests/lint_fixtures/guarded_by.cc\""),
            std::string::npos)
      << result.stdout_text;
}

// --format=sarif: SARIF 2.1.0 for CI code-scanning upload. Checks the
// schema header, the rule id, and a physicalLocation with the fixture
// line.
TEST(LintTest, SarifFormatEmitsCodeScanningReport) {
  const RunResult result =
      RunLint(RootArgs("--format=sarif " + FixturePath("hot_alloc.cc")));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.stdout_text.find("\"version\": \"2.1.0\""),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("sarif-schema-2.1.0.json"),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"ruleId\": \"alloc-in-hot-path\""),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"startLine\": 22"), std::string::npos)
      << result.stdout_text;
  // Empty results on a clean input must still be valid SARIF.
  const RunResult clean =
      RunLint(RootArgs("--format=sarif " + FixturePath("clean.cc")));
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_NE(clean.stdout_text.find("\"results\": []"), std::string::npos)
      << clean.stdout_text;
}

// The three semantic rules must not be silenced outside tests/:
// --self-check treats such a suppression as a finding in its own right.
TEST(LintTest, SemanticRuleSuppressionOutsideTestsIsForbidden) {
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/src";
  ::mkdir(src.c_str(), 0755);
  const std::string path = src + "/kdsel_lint_suppressed.cc";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "#include <mutex>\n";
    out << "void Sneaky() {\n";
    out << "  // kdsel-lint: allow(lock-order-inversion)\n";
    out << "}\n";
  }
  const RunResult result = RunLint("--root " + dir + " --self-check " + path);
  std::remove(path.c_str());
  ::rmdir(src.c_str());
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(
      result.stdout_text.find(
          "suppressing lock-order-inversion outside tests/ is forbidden"),
      std::string::npos)
      << result.stdout_text;
}

TEST(LintTest, ListRulesNamesEveryRule) {
  const RunResult result = RunLint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"discarded-status", "unchecked-value", "naked-new", "raw-parse",
        "nonreproducible-random", "lock-across-score", "raw-thread",
        "raw-simd", "raw-socket", "raw-timing", "lock-order-inversion",
        "guarded-by", "alloc-in-hot-path"}) {
    EXPECT_NE(result.stdout_text.find(rule), std::string::npos) << rule;
  }
}

TEST(LintTest, UnknownPathExitsWithUsageError) {
  const RunResult result =
      RunLint(RootArgs(std::string(KDSEL_SOURCE_DIR) + "/no/such/file.cc"));
  EXPECT_EQ(result.exit_code, 2);
}

}  // namespace
