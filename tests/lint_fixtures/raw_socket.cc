// Lint fixture: hand-rolled socket plumbing outside src/net/, the exact
// anti-pattern the raw-socket rule exists to catch. Real code must serve
// network traffic through net::NetServer (src/net/server.h), which owns
// nonblocking setup, backpressure and SLO shedding.
// NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>

namespace kdsel::fixture {

// A "quick" hand-rolled accept loop that sidesteps the event loop.
int OpenAdHocListener() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);  // 17: raw-socket
  if (fd < 0) return -1;
  const int ep = epoll_create1(0);  // 19: raw-socket
  if (ep < 0) return -1;
  epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);  // 24: raw-socket
  return accept4(fd, nullptr, nullptr, SOCK_NONBLOCK);  // 25: raw-socket
}

}  // namespace kdsel::fixture
