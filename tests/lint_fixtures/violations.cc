// Lint fixture: exactly one violation of every kdsel_lint rule, at line
// numbers lint_test asserts on. NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <mutex>
#include <string>

#include "common/status.h"

namespace kdsel::fixture {

Status DoWork(const std::string& input);

struct Detector {
  float Score(int x);
};

void Violations(Detector* detector) {
  DoWork("hello");  // line 20: discarded-status

  StatusOr<int> maybe = 42;
  int x = maybe.value();  // line 23: unchecked-value

  auto* leaked = new std::string("oops");  // line 25: naked-new

  const long parsed = std::stol("123");  // line 27: raw-parse

  const int noise = rand();  // line 29: nonreproducible-random

  std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  detector->Score(noise + x + static_cast<int>(parsed) +
                  static_cast<int>(leaked->size()));  // line 33 via line 34

  std::thread worker([] {});  // line 36: raw-thread
  worker.join();

  const __m256 wide = _mm256_setzero_ps();  // line 39: raw-simd
  (void)wide;
}

}  // namespace kdsel::fixture
