// Lint fixture: exactly one violation of every kdsel_lint rule, at line
// numbers lint_test asserts on. NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <chrono>
#include <mutex>
#include <string>

#include "common/status.h"

namespace kdsel::fixture {

Status DoWork(const std::string& input);

struct Detector {
  float Score(int x);
};

void Violations(Detector* detector) {
  DoWork("hello");  // line 21: discarded-status

  StatusOr<int> maybe = 42;
  int x = maybe.value();  // line 24: unchecked-value

  auto* leaked = new std::string("oops");  // line 26: naked-new

  const long parsed = std::stol("123");  // line 28: raw-parse

  const int noise = rand();  // line 30: nonreproducible-random

  std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  detector->Score(noise + x + static_cast<int>(parsed) +
                  static_cast<int>(leaked->size()));  // line 34 via line 35

  std::thread worker([] {});  // line 37: raw-thread
  worker.join();

  const __m256 wide = _mm256_setzero_ps();  // line 40: raw-simd
  (void)wide;

  const auto t0 = std::chrono::steady_clock::now();  // line 43: raw-timing
  (void)t0;
}

}  // namespace kdsel::fixture
