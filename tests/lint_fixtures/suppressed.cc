// Lint fixture: the same violation shapes as violations.cc, each
// silenced with the documented `// kdsel-lint: allow(rule)` syntax —
// same-line markers, a preceding-comment-line marker, and a multi-rule
// marker. Must scan clean. NOT compiled.

#include <chrono>
#include <mutex>
#include <string>

#include "common/status.h"

namespace kdsel::fixture_suppressed {

Status QuietWork(const std::string& input);

struct QuietDetector {
  float Score(int x);
};

void Suppressed(QuietDetector* detector) {
  QuietWork("hello");  // kdsel-lint: allow(discarded-status)

  StatusOr<int> maybe = 42;
  // kdsel-lint: allow(unchecked-value)
  int x = maybe.value();

  // One marker covering two rules on the same line.
  auto* leaked = new std::string(std::to_string(rand()));  // kdsel-lint: allow(naked-new, nonreproducible-random)

  const long parsed = std::stol("123");  // kdsel-lint: allow(raw-parse)

  std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  // kdsel-lint: allow(lock-across-score)
  detector->Score(x + static_cast<int>(parsed) +
                  static_cast<int>(leaked->size()));

  std::thread worker([] {});  // kdsel-lint: allow(raw-thread)
  worker.join();

  const __m128 quiet = _mm_setzero_ps();  // kdsel-lint: allow(raw-simd)
  (void)quiet;

  const auto t0 = std::chrono::high_resolution_clock::now();  // kdsel-lint: allow(raw-timing)
  (void)t0;
}

}  // namespace kdsel::fixture_suppressed
