// Lint fixture: KDSEL_GUARDED_BY / KDSEL_REQUIRES violations. Good()
// and BumpLocked() are the blessed shapes; Bad() touches the guarded
// member without the mutex, and CallsLockedHelperWithoutLock() calls a
// KDSEL_REQUIRES helper without holding its mutex.
// NOT compiled — scanned only (the annotation macros expand to nothing
// at compile time anyway; the analyzer reads them from the tokens).
//
// Keep line numbers stable: lint_test pins them.

#include <mutex>

#define KDSEL_GUARDED_BY(m)
#define KDSEL_REQUIRES(m)

namespace kdsel::fixture {

class GuardedCounter {
 public:
  void Good() {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
  }

  void BumpLocked() KDSEL_REQUIRES(mu_) { ++hits_; }

  int Bad() {
    return hits_;  // line 27: guarded-by (no lock held)
  }

  void CallsLockedHelperWithoutLock() {
    BumpLocked();  // line 31: guarded-by (KDSEL_REQUIRES not satisfied)
  }

 private:
  std::mutex mu_;
  int hits_ KDSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace kdsel::fixture
