// Lint fixture: the other half of the cross-file lock-order inversion
// (see lock_cycle_a.cc). CrossLockSecond() acquires gm_second — fine on
// its own, but lock_cycle_a.cc calls it with gm_first held. ReverseOrder
// then nests gm_first under gm_second, the opposite order.
// NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <mutex>

namespace kdsel::fixture {

std::mutex gm_first;
std::mutex gm_second;

void CrossLockSecond() {
  std::lock_guard<std::mutex> hold_second(gm_second);
}

void ReverseOrder() {
  std::lock_guard<std::mutex> hold_second(gm_second);
  std::lock_guard<std::mutex> hold_first(gm_first);  // line 22: inversion
}

}  // namespace kdsel::fixture
