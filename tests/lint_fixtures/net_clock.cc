// Lint fixture: ad-hoc request timestamping in a net-layer file, the
// anti-pattern the extended raw-timing rule exists to catch. Stage
// stamps in src/net/ and src/serve/ must flow through obs::NowNs
// (obs/clock.h) so queue/batch_wait/compute/write deltas share one
// steady timebase; CLOCK_REALTIME and gettimeofday(2) drift under NTP
// slews and silently corrupt stage attribution.
// NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <sys/time.h>
#include <time.h>

#include <chrono>

namespace kdsel::fixture {

// A "quick" ingress stamp that bypasses the shared timebase.
long StampIngressUs() {
  timespec ts = {};
  clock_gettime(CLOCK_MONOTONIC, &ts);  // 21: raw-timing
  return ts.tv_sec * 1000000L + ts.tv_nsec / 1000;
}

// Wall-clock flush stamp: wrong timebase AND wrong clock.
long StampFlushUs() {
  timeval tv = {};
  gettimeofday(&tv, nullptr);  // 28: raw-timing
  return tv.tv_sec * 1000000L + tv.tv_usec;
}

// The C++ spelling of the same mistake.
long StampDoneUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now()  // 35: raw-timing
                 .time_since_epoch())
      .count();
}

struct FakeTimer {
  int64_t gettimeofday() { return 0; }  // Member decl: not the syscall.
};

// Member call through an object is not the raw syscall either.
long StampViaMember(FakeTimer& timer) { return timer.gettimeofday(); }

}  // namespace kdsel::fixture
