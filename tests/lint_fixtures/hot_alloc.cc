// Lint fixture: alloc-in-hot-path. HotIngest is a KDSEL_HOT root; the
// walk flags container growth with no reserve() anywhere in the tree
// and allocating string formatting, both directly in the root and
// transitively through AppendStaging. SetupStaging is a trusted
// KDSEL_ALLOC_OK boundary and HotReserved's vector is reserve-proven,
// so neither is flagged.
// NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <string>
#include <vector>

#define KDSEL_HOT
#define KDSEL_ALLOC_OK(why)

namespace kdsel::fixture {

std::vector<int> g_staging;

void AppendStaging(int v) {
  g_staging.push_back(v);  // line 22: alloc-in-hot-path (via HotIngest)
}

KDSEL_ALLOC_OK("setup-time growth, verified by fixture design")
void SetupStaging(int v) {
  g_staging.push_back(v);  // not flagged: inside an ALLOC_OK boundary
}

struct HotRing {
  std::vector<int> ring;
  std::vector<int> backing;
};

KDSEL_HOT void HotIngest(HotRing& r, int v) {
  r.ring.push_back(v);  // line 36: alloc-in-hot-path (no reserve)
  AppendStaging(v);
  SetupStaging(v);
  std::to_string(v);  // line 39: alloc-in-hot-path (formatting)
}

KDSEL_HOT void HotReserved(HotRing& r) {
  r.backing.reserve(64);
  r.backing.push_back(1);  // not flagged: backing is reserve-proven
}

}  // namespace kdsel::fixture
