// Lint fixture: half of a cross-file lock-order inversion. This file
// acquires gm_first and then calls into lock_cycle_b.cc, which acquires
// gm_second while gm_first is still held. lock_cycle_b.cc also takes
// gm_second before gm_first, closing the cycle: the lock graph has
// gm_first -> gm_second (transitive, via CrossLockSecond) and
// gm_second -> gm_first (direct), so both edges are diagnosed.
// NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <mutex>

namespace kdsel::fixture {

extern std::mutex gm_first;
extern std::mutex gm_second;

void CrossLockSecond();

void ForwardOrder() {
  std::lock_guard<std::mutex> hold_first(gm_first);
  CrossLockSecond();  // line 22: acquires gm_second while gm_first held
}

}  // namespace kdsel::fixture
