// Lint fixture: hand-rolled NDJSON wire parsing, the exact anti-pattern
// the raw-parse rule exists to catch on the streaming path. Real code
// must parse stream lines through serve::Json::Parse plus the strict
// kdsel::Parse* helpers (src/stream/protocol.cc is the blessed shape).
// NOT compiled — scanned only.
//
// Keep line numbers stable: lint_test pins them.

#include <cstdlib>
#include <string>

namespace kdsel::fixture {

// A "quick" point-event parser that rips fields out of an NDJSON line
// with substring search and raw C number parsing.
double ParseStreamValue(const std::string& line) {
  const size_t pos = line.find("\"value\":");
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + 8, nullptr);  // 19: raw-parse
}

int ParseStreamPoint(const std::string& line) {
  const size_t pos = line.find("\"point\":");
  if (pos == std::string::npos) return -1;
  return atoi(line.c_str() + pos + 8);  // line 25: raw-parse
}

}  // namespace kdsel::fixture
