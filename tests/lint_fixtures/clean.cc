// Lint fixture: idiomatic code that must produce zero diagnostics —
// including the look-alikes that trip naive scanners (rule names inside
// strings and comments, value_or, checked .value(), consumed Status).
// NOT compiled.

#include <memory>
#include <mutex>
#include <string>

#include "common/check.h"
#include "common/status.h"

namespace kdsel::fixture_clean {

Status Tidy(const std::string& input);

Status Caller() {
  // Prose mentioning rand(), new Foo() and steady_clock::now() must not
  // fire: comments are stripped before scanning.
  KDSEL_RETURN_NOT_OK(Tidy("checked"));
  Status status = Tidy("assigned");
  if (!status.ok()) return status;

  const std::string text =
      "calling rand() via new Foo(), std::stoi() and "
      "std::chrono::steady_clock::now()";
  auto owned = std::make_unique<std::string>(text);

  StatusOr<int> maybe = 7;
  KDSEL_CHECK(maybe.ok());
  const int value = maybe.value();

  StatusOr<int> other = value;
  const int fallback = other.ok() ? other.value() : 0;
  (void)fallback;
  (void)owned;

  // A lock that does NOT span a Score call: released by scope before
  // any scoring happens.
  std::mutex mu;
  {
    std::lock_guard<std::mutex> lock(mu);
  }
  return Status::OK();
}

}  // namespace kdsel::fixture_clean
