#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace kdsel::nn {
namespace {

/// A tiny 3-class problem: class = argmax of 3 noisy prototype dots.
struct ToyProblem {
  Tensor x;
  std::vector<int> y;
};

ToyProblem MakeToyProblem(size_t n, Rng& rng) {
  const size_t d = 10;
  std::vector<std::vector<float>> prototypes(3, std::vector<float>(d));
  for (auto& p : prototypes) {
    for (float& v : p) v = static_cast<float>(rng.Normal());
  }
  ToyProblem problem{Tensor({n, d}), {}};
  problem.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int c = static_cast<int>(rng.Index(3));
    problem.y[i] = c;
    for (size_t j = 0; j < d; ++j) {
      problem.x.At(i, j) = prototypes[static_cast<size_t>(c)][j] +
                           static_cast<float>(rng.Normal(0.0, 0.3));
    }
  }
  return problem;
}

double TrainAccuracy(Sequential& net, const ToyProblem& p) {
  Tensor logits = net.Forward(p.x, false);
  size_t hits = 0;
  const size_t m = logits.dim(1);
  for (size_t i = 0; i < p.y.size(); ++i) {
    size_t best = 0;
    for (size_t j = 1; j < m; ++j) {
      if (logits.At(i, j) > logits.At(i, best)) best = j;
    }
    hits += (static_cast<int>(best) == p.y[i]);
  }
  return static_cast<double>(hits) / static_cast<double>(p.y.size());
}

void TrainSteps(Sequential& net, Optimizer& opt, const ToyProblem& p,
                int steps) {
  for (int s = 0; s < steps; ++s) {
    Tensor logits = net.Forward(p.x, true);
    LossResult loss = SoftmaxCrossEntropyHard(logits, p.y, {});
    net.Backward(loss.grad);
    ClipGradNorm(opt.params(), 10.0);
    opt.Step();
    opt.ZeroGrad();
  }
}

TEST(TrainingTest, AdamLearnsToyProblem) {
  Rng rng(1);
  ToyProblem p = MakeToyProblem(120, rng);
  Sequential net;
  net.Add(std::make_unique<Linear>(10, 16, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(16, 3, rng));
  Adam opt(net.Parameters(), 0.01);
  TrainSteps(net, opt, p, 150);
  EXPECT_GT(TrainAccuracy(net, p), 0.95);
}

TEST(TrainingTest, SgdLearnsToyProblem) {
  Rng rng(2);
  ToyProblem p = MakeToyProblem(120, rng);
  Sequential net;
  net.Add(std::make_unique<Linear>(10, 16, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(16, 3, rng));
  Sgd opt(net.Parameters(), 0.05, 0.9);
  TrainSteps(net, opt, p, 200);
  EXPECT_GT(TrainAccuracy(net, p), 0.9);
}

TEST(TrainingTest, LossDecreasesMonotonicallyOnAverage) {
  Rng rng(3);
  ToyProblem p = MakeToyProblem(80, rng);
  Sequential net;
  net.Add(std::make_unique<Linear>(10, 8, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(8, 3, rng));
  Adam opt(net.Parameters(), 0.01);
  double first = 0, last = 0;
  for (int s = 0; s < 100; ++s) {
    Tensor logits = net.Forward(p.x, true);
    LossResult loss = SoftmaxCrossEntropyHard(logits, p.y, {});
    if (s == 0) first = loss.mean_loss;
    last = loss.mean_loss;
    net.Backward(loss.grad);
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(OptimizerTest, SgdStepMatchesHandComputation) {
  Rng rng(4);
  Linear layer(2, 1, rng);
  auto params = layer.Parameters();
  Sgd opt(params, /*lr=*/0.1, /*momentum=*/0.0);
  const float w0 = params[0]->value[0];
  params[0]->grad[0] = 2.0f;
  opt.Step();
  EXPECT_NEAR(params[0]->value[0], w0 - 0.1f * 2.0f, 1e-6f);
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  Rng rng(5);
  Linear layer(2, 1, rng);
  auto params = layer.Parameters();
  Sgd opt(params, 0.1, 0.9);
  const float w0 = params[0]->value[0];
  params[0]->grad[0] = 1.0f;
  opt.Step();  // v=1, w -= 0.1
  params[0]->grad[0] = 1.0f;
  opt.Step();  // v=1.9, w -= 0.19
  EXPECT_NEAR(params[0]->value[0], w0 - 0.1f - 0.19f, 1e-5f);
}

TEST(OptimizerTest, AdamFirstStepIsLrSizedSignedStep) {
  Rng rng(6);
  Linear layer(2, 1, rng);
  auto params = layer.Parameters();
  Adam opt(params, 0.01);
  const float w0 = params[0]->value[0];
  params[0]->grad[0] = 0.5f;
  opt.Step();
  // After bias correction the first Adam step is ~lr * sign(grad).
  EXPECT_NEAR(params[0]->value[0], w0 - 0.01f, 1e-4f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Rng rng(7);
  Linear layer(3, 2, rng);
  auto params = layer.Parameters();
  Adam opt(params, 0.01);
  params[0]->grad.Fill(1.0f);
  opt.ZeroGrad();
  for (float g : params[0]->grad.data()) EXPECT_EQ(g, 0.0f);
}

TEST(ClipTest, ScalesDownLargeGradients) {
  Rng rng(8);
  Linear layer(4, 4, rng);
  auto params = layer.Parameters();
  for (Parameter* p : params) p->grad.Fill(10.0f);
  double norm_before = ClipGradNorm(params, 1.0);
  EXPECT_GT(norm_before, 1.0);
  double total = 0;
  for (Parameter* p : params) total += p->grad.SquaredL2Norm();
  EXPECT_NEAR(std::sqrt(total), 1.0, 1e-4);
}

TEST(ClipTest, LeavesSmallGradientsAlone) {
  Rng rng(9);
  Linear layer(2, 2, rng);
  auto params = layer.Parameters();
  for (Parameter* p : params) p->grad.Fill(0.001f);
  ClipGradNorm(params, 10.0);
  for (Parameter* p : params) {
    for (float g : p->grad.data()) EXPECT_FLOAT_EQ(g, 0.001f);
  }
}

TEST(DropoutTest, IdentityAtInference) {
  Rng rng(10);
  Dropout drop(0.5, rng);
  Tensor x({4, 4});
  for (float& v : x.mutable_data()) v = 1.0f;
  Tensor y = drop.Forward(x, /*training=*/false);
  for (float v : y.data()) EXPECT_EQ(v, 1.0f);
}

TEST(DropoutTest, ScalesSurvivorsDuringTraining) {
  Rng rng(11);
  Dropout drop(0.5, rng);
  Tensor x({50, 50});
  for (float& v : x.mutable_data()) v = 1.0f;
  Tensor y = drop.Forward(x, /*training=*/true);
  double sum = 0;
  size_t zeros = 0;
  for (float v : y.data()) {
    sum += v;
    zeros += (v == 0.0f);
    if (v != 0.0f) {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1/(1-0.5)
    }
  }
  // Inverted dropout keeps E[output] = input.
  EXPECT_NEAR(sum / static_cast<double>(y.size()), 1.0, 0.1);
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.05);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(12);
  Sequential net;
  net.Add(std::make_unique<Linear>(6, 8, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(8, 2, rng));
  const std::string path =
      (std::filesystem::temp_directory_path() / "kdsel_module.bin").string();
  ASSERT_TRUE(SaveModule(net, path).ok());

  Rng rng2(99);  // different init
  Sequential net2;
  net2.Add(std::make_unique<Linear>(6, 8, rng2));
  net2.Add(std::make_unique<ReLU>());
  net2.Add(std::make_unique<Linear>(8, 2, rng2));
  ASSERT_TRUE(LoadModule(net2, path).ok());

  Tensor x({3, 6});
  Rng rng3(5);
  for (float& v : x.mutable_data()) v = static_cast<float>(rng3.Normal());
  Tensor y1 = net.Forward(x, false);
  Tensor y2 = net2.Forward(x, false);
  for (size_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  std::filesystem::remove(path);
}

TEST(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(13);
  Linear small(4, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "kdsel_mismatch.bin").string();
  ASSERT_TRUE(SaveModule(small, path).ok());
  Linear big(8, 2, rng);
  EXPECT_FALSE(LoadModule(big, path).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileRejected) {
  Rng rng(14);
  Linear layer(4, 2, rng);
  EXPECT_FALSE(LoadModule(layer, "/nonexistent/ckpt.bin").ok());
}

TEST(ModuleTest, ParameterCount) {
  Rng rng(15);
  Linear layer(10, 5, rng);
  EXPECT_EQ(ParameterCount(layer), 10u * 5u + 5u);
}

}  // namespace
}  // namespace kdsel::nn
