#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lsh/simhash.h"
#include "text/text_encoder.h"

namespace kdsel {
namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  return dot / std::sqrt(na * nb);
}

TEST(TokenizeTest, LowercasesAndSplitsOnNonAlnum) {
  auto tokens = text::Tokenize("Hello, World! ECG-123 data");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "ecg");
  EXPECT_EQ(tokens[3], "123");
  EXPECT_EQ(tokens[4], "data");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(text::Tokenize("").empty());
  EXPECT_TRUE(text::Tokenize("!!! ... ---").empty());
}

TEST(TextEncoderTest, OutputDimAndUnitNorm) {
  text::HashedTextEncoder encoder;
  auto v = encoder.Encode("a heart rate time series with two anomalies");
  EXPECT_EQ(v.size(), 768u);
  double norm = 0;
  for (float x : v) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

TEST(TextEncoderTest, DeterministicAcrossInstances) {
  text::HashedTextEncoder a, b;
  auto va = a.Encode("the same text");
  auto vb = b.Encode("the same text");
  for (size_t i = 0; i < va.size(); ++i) EXPECT_FLOAT_EQ(va[i], vb[i]);
}

TEST(TextEncoderTest, SimilarTextsCloserThanDissimilar) {
  text::HashedTextEncoder encoder;
  auto ecg1 = encoder.Encode(
      "This is a time series from dataset ECG, an electrocardiogram "
      "recording with ventricular anomalies. The length is 500.");
  auto ecg2 = encoder.Encode(
      "This is a time series from dataset ECG, an electrocardiogram "
      "recording with ventricular anomalies. The length is 900.");
  auto traffic = encoder.Encode(
      "Completely different words about freeway loop detectors and "
      "baseball game traffic surges in Los Angeles.");
  EXPECT_GT(Cosine(ecg1, ecg2), Cosine(ecg1, traffic) + 0.2);
}

TEST(TextEncoderTest, SharedVocabularyRaisesSimilarity) {
  text::HashedTextEncoder encoder;
  auto a = encoder.Encode("anomaly detection in sensor networks");
  auto b = encoder.Encode("anomaly detection in wireless networks");
  auto c = encoder.Encode("quarterly financial revenue projections");
  EXPECT_GT(Cosine(a, b), Cosine(a, c));
}

TEST(TextEncoderTest, EmptyTextIsZeroVector) {
  text::HashedTextEncoder encoder;
  auto v = encoder.Encode("");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(TextEncoderTest, BatchMatchesSingle) {
  text::HashedTextEncoder encoder;
  std::vector<std::string> texts{"first text", "second different text"};
  auto batch = encoder.EncodeBatch(texts);
  EXPECT_EQ(batch.dim(0), 2u);
  EXPECT_EQ(batch.dim(1), 768u);
  auto single = encoder.Encode(texts[1]);
  for (size_t j = 0; j < 768; ++j) {
    EXPECT_FLOAT_EQ(batch.At(1, j), single[j]);
  }
}

TEST(TextEncoderTest, CustomDimensions) {
  text::HashedTextEncoder::Options opts;
  opts.output_dim = 128;
  opts.vocab_dim = 512;
  text::HashedTextEncoder encoder(opts);
  EXPECT_EQ(encoder.Encode("hi there").size(), 128u);
}

TEST(SimHashTest, DeterministicSignatures) {
  lsh::SimHash h(16, 14, 7);
  std::vector<float> x(16, 1.0f);
  EXPECT_EQ(h.Signature(x), h.Signature(x));
}

TEST(SimHashTest, SignatureUsesRequestedBits) {
  lsh::SimHash h(8, 10, 3);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::vector<float> x(8);
    for (float& v : x) v = static_cast<float>(rng.Normal());
    EXPECT_LT(h.Signature(x), uint64_t{1} << 10);
  }
}

TEST(SimHashTest, IdenticalVectorsShareSignature) {
  lsh::SimHash h(32, 14, 11);
  Rng rng(2);
  std::vector<float> x(32);
  for (float& v : x) v = static_cast<float>(rng.Normal());
  std::vector<float> y = x;
  EXPECT_EQ(h.Signature(x), h.Signature(y));
}

TEST(SimHashTest, SimilarVectorsAgreeOnMoreBitsThanDissimilar) {
  lsh::SimHash h(64, 32, 13);
  Rng rng(3);
  double similar_dist = 0, dissimilar_dist = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> x(64), near(64), far(64);
    for (size_t i = 0; i < 64; ++i) {
      x[i] = static_cast<float>(rng.Normal());
      near[i] = x[i] + static_cast<float>(rng.Normal(0.0, 0.1));
      far[i] = static_cast<float>(rng.Normal());
    }
    similar_dist += lsh::HammingDistance(h.Signature(x), h.Signature(near));
    dissimilar_dist += lsh::HammingDistance(h.Signature(x), h.Signature(far));
  }
  EXPECT_LT(similar_dist / trials + 4, dissimilar_dist / trials);
}

TEST(SimHashTest, HammingDistance) {
  EXPECT_EQ(lsh::HammingDistance(0b1010, 0b1010), 0);
  EXPECT_EQ(lsh::HammingDistance(0b1010, 0b0101), 4);
  EXPECT_EQ(lsh::HammingDistance(0, ~uint64_t{0}), 64);
}

TEST(SimHashTest, BuildBucketsGroupsDuplicates) {
  lsh::SimHash h(8, 14, 17);
  Rng rng(4);
  std::vector<std::vector<float>> rows;
  std::vector<float> base(8);
  for (float& v : base) v = static_cast<float>(rng.Normal());
  rows.push_back(base);
  rows.push_back(base);  // exact duplicate
  std::vector<float> other(8);
  for (float& v : other) v = static_cast<float>(rng.Normal());
  rows.push_back(other);

  auto buckets = lsh::BuildBuckets(h, rows);
  // The two duplicates must share a bucket.
  uint64_t sig = h.Signature(base);
  ASSERT_TRUE(buckets.count(sig));
  EXPECT_GE(buckets[sig].size(), 2u);
  size_t total = 0;
  for (const auto& [k, v] : buckets) total += v.size();
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace kdsel
