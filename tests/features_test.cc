#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "features/features.h"

namespace kdsel::features {
namespace {

TEST(FeatureNamesTest, CountMatchesExtraction) {
  std::vector<float> window(32, 1.0f);
  for (size_t i = 0; i < 32; ++i) window[i] = static_cast<float>(i);
  EXPECT_EQ(ExtractFeatures(window).size(), FeatureCount());
  EXPECT_EQ(FeatureNames().size(), FeatureCount());
}

TEST(FeatureNamesTest, NamesUnique) {
  std::set<std::string> names(FeatureNames().begin(), FeatureNames().end());
  EXPECT_EQ(names.size(), FeatureCount());
}

size_t IndexOf(const std::string& name) {
  const auto& names = FeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  ADD_FAILURE() << "missing feature " << name;
  return 0;
}

TEST(FeatureValuesTest, KnownStatistics) {
  std::vector<float> window{1, 2, 3, 4, 5, 6, 7, 8};
  auto f = ExtractFeatures(window);
  EXPECT_NEAR(f[IndexOf("mean")], 4.5f, 1e-5f);
  EXPECT_NEAR(f[IndexOf("min")], 1.0f, 1e-6f);
  EXPECT_NEAR(f[IndexOf("max")], 8.0f, 1e-6f);
  EXPECT_NEAR(f[IndexOf("median")], 4.5f, 1e-5f);
  EXPECT_NEAR(f[IndexOf("mean_abs_change")], 1.0f, 1e-5f);
  EXPECT_NEAR(f[IndexOf("last_minus_first")], 7.0f, 1e-5f);
  EXPECT_NEAR(f[IndexOf("count_above_mean")], 0.5f, 1e-5f);
}

TEST(FeatureValuesTest, ConstantWindowIsFinite) {
  std::vector<float> window(16, 2.5f);
  auto f = ExtractFeatures(window);
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(f[IndexOf("std")], 0.0f, 1e-6f);
}

TEST(FeatureValuesTest, ConstantWindowDegenerateContract) {
  // Variance-normalized statistics of a constant window are exactly 0 by
  // contract — including ratio_beyond_*sigma, which naive |x - mean| > 0
  // counting turns into 1.0 when the float mean rounds off the constant.
  for (float level : {0.0f, 2.5f, -7.25f, 1.0e6f}) {
    std::vector<float> window(64, level);
    auto f = ExtractFeatures(window);
    for (float v : f) EXPECT_TRUE(std::isfinite(v)) << "level " << level;
    EXPECT_FLOAT_EQ(f[IndexOf("skewness")], 0.0f) << "level " << level;
    EXPECT_FLOAT_EQ(f[IndexOf("kurtosis")], 0.0f) << "level " << level;
    for (const char* name :
         {"autocorr_lag1", "autocorr_lag2", "autocorr_lag4", "autocorr_lag8"}) {
      EXPECT_FLOAT_EQ(f[IndexOf(name)], 0.0f)
          << name << " at level " << level;
    }
    EXPECT_FLOAT_EQ(f[IndexOf("ratio_beyond_1sigma")], 0.0f)
        << "level " << level;
    EXPECT_FLOAT_EQ(f[IndexOf("ratio_beyond_2sigma")], 0.0f)
        << "level " << level;
  }
}

TEST(FeatureValuesTest, NearConstantWindowIsDegenerate) {
  // A large level with a few-ulp wobble has variance that is pure float
  // quantization noise; the relative threshold must classify it as
  // degenerate instead of emitting huge normalized moments.
  std::vector<float> window(64, 1.0e6f);
  for (size_t i = 0; i < window.size(); i += 7) {
    window[i] = std::nextafter(window[i], 2.0e6f);
  }
  auto f = ExtractFeatures(window);
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
  EXPECT_FLOAT_EQ(f[IndexOf("skewness")], 0.0f);
  EXPECT_FLOAT_EQ(f[IndexOf("kurtosis")], 0.0f);
  EXPECT_FLOAT_EQ(f[IndexOf("autocorr_lag1")], 0.0f);
  EXPECT_FLOAT_EQ(f[IndexOf("ratio_beyond_1sigma")], 0.0f);
}

TEST(FeatureValuesTest, GenuineVarianceIsNotDegenerate) {
  // A plain sine keeps its normalized statistics: the degenerate guard
  // must not swallow real structure.
  std::vector<float> window(64);
  for (size_t i = 0; i < window.size(); ++i) {
    window[i] = static_cast<float>(5.0 + std::sin(i * 0.3));
  }
  auto f = ExtractFeatures(window);
  EXPECT_GT(f[IndexOf("autocorr_lag1")], 0.5f);
  EXPECT_GT(f[IndexOf("ratio_beyond_1sigma")], 0.0f);
  EXPECT_FALSE(DegenerateVariance(0.5, 5.0));
  EXPECT_TRUE(DegenerateVariance(0.0, 5.0));
  EXPECT_TRUE(DegenerateVariance(1e-14, 0.0));
}

TEST(FeatureValuesTest, ExtractIntoMatchesVectorApi) {
  Rng rng(11);
  std::vector<float> window(48);
  for (float& v : window) v = static_cast<float>(rng.Normal(1.0, 2.0));
  auto f = ExtractFeatures(window);
  FeatureScratch scratch;
  scratch.Reserve(window.size());
  std::vector<float> into(FeatureCount());
  ExtractFeaturesInto(window.data(), window.size(), scratch, into.data());
  for (size_t j = 0; j < f.size(); ++j) {
    EXPECT_FLOAT_EQ(into[j], f[j]) << FeatureNames()[j];
  }
}

TEST(FeatureValuesTest, ZeroCrossingRate) {
  std::vector<float> window{1, -1, 1, -1, 1, -1, 1, -1};
  auto f = ExtractFeatures(window);
  EXPECT_NEAR(f[IndexOf("zero_cross_rate")], 1.0f, 1e-5f);
}

TEST(FeatureValuesTest, AutocorrOfPeriodicSignal) {
  std::vector<float> window(64);
  for (size_t i = 0; i < 64; ++i) {
    window[i] = static_cast<float>(std::sin(i * 3.14159265 / 4));  // period 8
  }
  auto f = ExtractFeatures(window);
  // lag-8 autocorrelation of a period-8 signal is strongly positive;
  // lag-4 (half period) strongly negative.
  EXPECT_GT(f[IndexOf("autocorr_lag8")], 0.7f);
  EXPECT_LT(f[IndexOf("autocorr_lag4")], -0.7f);
}

TEST(FeatureValuesTest, SpikeRaisesBeyondSigmaRatios) {
  std::vector<float> base(64, 0.0f);
  Rng rng(1);
  for (float& v : base) v = static_cast<float>(rng.Normal(0, 0.1));
  auto f_base = ExtractFeatures(base);
  auto spiked = base;
  spiked[30] = 10.0f;
  auto f_spiked = ExtractFeatures(spiked);
  EXPECT_GT(f_spiked[IndexOf("max")], f_base[IndexOf("max")] + 5.0f);
  EXPECT_GT(f_spiked[IndexOf("kurtosis")], f_base[IndexOf("kurtosis")]);
}

TEST(FeatureBatchTest, BatchMatchesSingle) {
  Rng rng(2);
  std::vector<std::vector<float>> windows(3, std::vector<float>(16));
  for (auto& w : windows) {
    for (float& v : w) v = static_cast<float>(rng.Normal());
  }
  auto batch = ExtractFeaturesBatch(windows);
  ASSERT_EQ(batch.size(), 3u);
  auto single = ExtractFeatures(windows[1]);
  for (size_t j = 0; j < single.size(); ++j) {
    EXPECT_FLOAT_EQ(batch[1][j], single[j]);
  }
}

TEST(FeatureScalerTest, TransformsToZeroMeanUnitVar) {
  Rng rng(3);
  std::vector<std::vector<float>> rows(200, std::vector<float>(4));
  for (auto& r : rows) {
    r[0] = static_cast<float>(rng.Normal(5, 2));
    r[1] = static_cast<float>(rng.Normal(-3, 0.5));
    r[2] = static_cast<float>(rng.Uniform(0, 100));
    r[3] = 7.0f;  // constant column
  }
  FeatureScaler scaler;
  scaler.Fit(rows);
  auto scaled = scaler.TransformBatch(rows);
  for (size_t j = 0; j < 3; ++j) {
    double mean = 0, var = 0;
    for (const auto& r : scaled) mean += r[j];
    mean /= scaled.size();
    for (const auto& r : scaled) var += (r[j] - mean) * (r[j] - mean);
    var /= scaled.size();
    EXPECT_NEAR(mean, 0.0, 1e-4) << "column " << j;
    EXPECT_NEAR(var, 1.0, 1e-3) << "column " << j;
  }
  // Constant column maps to 0 (inv_std = 0 guard).
  for (const auto& r : scaled) EXPECT_FLOAT_EQ(r[3], 0.0f);
}

TEST(FeatureScalerTest, TrainTestConsistency) {
  std::vector<std::vector<float>> train{{0.0f}, {10.0f}};
  FeatureScaler scaler;
  scaler.Fit(train);
  auto t = scaler.Transform({5.0f});
  EXPECT_NEAR(t[0], 0.0f, 1e-6f);  // 5 is the train mean
}

}  // namespace
}  // namespace kdsel::features
