#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "selectors/dtw.h"

namespace kdsel::selectors {
namespace {

TEST(DtwDistanceTest, IdenticalSeriesIsZero) {
  std::vector<float> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(BandedDtwSquared(a, a, 2, 1e18), 0.0);
}

TEST(DtwDistanceTest, MatchesEuclideanWithBandOne) {
  // Constant offset: warping cannot help, DTW == squared Euclidean on
  // the diagonal.
  std::vector<float> a{0, 0, 0, 0};
  std::vector<float> b{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(BandedDtwSquared(a, b, 1, 1e18), 4.0);
}

TEST(DtwDistanceTest, WarpingBeatsEuclideanOnShiftedSignal) {
  // A one-step time shift of a spike: Euclidean is large, DTW small.
  std::vector<float> a{0, 0, 5, 0, 0, 0};
  std::vector<float> b{0, 0, 0, 5, 0, 0};
  double euclid = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    euclid += (a[i] - b[i]) * (a[i] - b[i]);
  }
  double dtw = BandedDtwSquared(a, b, 2, 1e18);
  EXPECT_LT(dtw, euclid * 0.2);
}

TEST(DtwDistanceTest, EarlyAbandonReturnsBound) {
  std::vector<float> a{0, 0, 0, 0};
  std::vector<float> b{10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(BandedDtwSquared(a, b, 1, 5.0), 5.0);
}

TEST(DtwDistanceTest, SymmetricWithinBand) {
  Rng rng(1);
  std::vector<float> a(16), b(16);
  for (size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<float>(rng.Normal());
    b[i] = static_cast<float>(rng.Normal());
  }
  EXPECT_NEAR(BandedDtwSquared(a, b, 3, 1e18),
              BandedDtwSquared(b, a, 3, 1e18), 1e-9);
}

TEST(LbKeoghTest, IsALowerBound) {
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<float> a(20), b(20);
    for (size_t i = 0; i < 20; ++i) {
      a[i] = static_cast<float>(rng.Normal());
      b[i] = static_cast<float>(rng.Normal());
    }
    const size_t band = 3;
    EXPECT_LE(LbKeoghSquared(a, b, band),
              BandedDtwSquared(a, b, band, 1e18) + 1e-9);
  }
}

TEST(LbKeoghTest, ZeroForEnvelopedQuery) {
  std::vector<float> candidate{0, 1, 2, 3, 4};
  std::vector<float> query{0.5f, 1.5f, 2.0f, 2.5f, 3.5f};
  EXPECT_DOUBLE_EQ(LbKeoghSquared(query, candidate, 2), 0.0);
}

TEST(DtwSelectorTest, LearnsShapeTaskWithPhaseJitter) {
  // Two classes distinguished by shape but with random phase — exactly
  // where DTW beats Euclidean 1-NN.
  Rng rng(3);
  TrainingData train;
  train.num_classes = 2;
  auto make = [&](int c) {
    std::vector<float> w(32);
    const double phase = rng.Uniform(0, 6.28);
    for (size_t t = 0; t < 32; ++t) {
      w[t] = static_cast<float>(c == 0 ? std::sin(0.4 * t + phase)
                                       : std::sin(0.4 * t + phase) *
                                             (t < 16 ? 1.0 : -1.0));
    }
    return w;
  };
  for (int i = 0; i < 30; ++i) {
    for (int c = 0; c < 2; ++c) {
      train.windows.push_back(make(c));
      train.labels.push_back(c);
    }
  }
  DtwSelector selector;
  ASSERT_TRUE(selector.Fit(train).ok());
  TrainingData test;
  test.num_classes = 2;
  for (int i = 0; i < 10; ++i) {
    for (int c = 0; c < 2; ++c) {
      test.windows.push_back(make(c));
      test.labels.push_back(c);
    }
  }
  auto pred = selector.Predict(test.windows);
  ASSERT_TRUE(pred.ok());
  size_t hits = 0;
  for (size_t i = 0; i < pred->size(); ++i) {
    hits += ((*pred)[i] == test.labels[i]);
  }
  EXPECT_GT(static_cast<double>(hits) / pred->size(), 0.8);
}

TEST(DtwSelectorTest, SubsamplesLargeTrainingSets) {
  Rng rng(4);
  TrainingData train;
  train.num_classes = 3;
  for (int i = 0; i < 900; ++i) {
    std::vector<float> w(8);
    for (float& v : w) v = static_cast<float>(rng.Normal());
    train.windows.push_back(std::move(w));
    train.labels.push_back(i % 3);
  }
  DtwSelector::Options opts;
  opts.max_train_samples = 90;
  DtwSelector selector(opts);
  ASSERT_TRUE(selector.Fit(train).ok());
  // Prediction still works and returns valid labels.
  auto pred = selector.Predict({train.windows[0]});
  ASSERT_TRUE(pred.ok());
  EXPECT_GE((*pred)[0], 0);
  EXPECT_LT((*pred)[0], 3);
}

TEST(DtwSelectorTest, PredictBeforeFitFails) {
  DtwSelector selector;
  EXPECT_FALSE(selector.Predict({{1.0f, 2.0f}}).ok());
}

}  // namespace
}  // namespace kdsel::selectors
