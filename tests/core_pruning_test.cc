#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "core/pruning.h"
#include "core/soft_label.h"

namespace kdsel::core {
namespace {

TEST(SoftLabelTest, RowsAreDistributions) {
  std::vector<std::vector<float>> perf{{0.9f, 0.1f, 0.5f},
                                       {0.2f, 0.8f, 0.3f}};
  auto soft = BuildSoftLabels(perf, 0.25);
  ASSERT_TRUE(soft.ok());
  for (size_t i = 0; i < 2; ++i) {
    double sum = 0;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GT(soft->At(i, j), 0.0f);
      sum += soft->At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftLabelTest, BestModelGetsHighestProbability) {
  std::vector<std::vector<float>> perf{{0.9f, 0.1f, 0.5f}};
  auto soft = BuildSoftLabels(perf, 0.25);
  ASSERT_TRUE(soft.ok());
  EXPECT_GT(soft->At(0, 0), soft->At(0, 2));
  EXPECT_GT(soft->At(0, 2), soft->At(0, 1));
}

TEST(SoftLabelTest, TemperatureControlsSharpness) {
  std::vector<std::vector<float>> perf{{0.9f, 0.1f}};
  auto sharp = BuildSoftLabels(perf, 0.1);
  auto smooth = BuildSoftLabels(perf, 10.0);
  ASSERT_TRUE(sharp.ok() && smooth.ok());
  EXPECT_GT(sharp->At(0, 0), smooth->At(0, 0));
  EXPECT_NEAR(smooth->At(0, 0), 0.5f, 0.05f);
}

TEST(SoftLabelTest, RejectsBadInput) {
  EXPECT_FALSE(BuildSoftLabels({}, 0.25).ok());
  EXPECT_FALSE(BuildSoftLabels({{0.5f}}, 0.0).ok());
  EXPECT_FALSE(BuildSoftLabels({{0.5f, 0.2f}, {0.1f}}, 0.25).ok());
}

TEST(SoftLabelTest, HardLabelsAreArgmax) {
  std::vector<std::vector<float>> perf{{0.9f, 0.1f}, {0.2f, 0.8f}};
  auto labels = HardLabelsFromPerformance(perf);
  EXPECT_EQ(labels, (std::vector<int>{0, 1}));
}

TEST(PrunerTest, ModeNames) {
  EXPECT_STREQ(PruningModeToString(PruningMode::kNone), "none");
  EXPECT_STREQ(PruningModeToString(PruningMode::kInfoBatch), "infobatch");
  EXPECT_STREQ(PruningModeToString(PruningMode::kPa), "pa");
}

TEST(PrunerTest, NoneKeepsEverySampleEveryEpoch) {
  PrunerOptions opts;
  opts.mode = PruningMode::kNone;
  Pruner pruner(opts, 50, {});
  for (size_t epoch = 0; epoch < 5; ++epoch) {
    auto plan = pruner.PlanEpoch(epoch, 10);
    EXPECT_EQ(plan.kept.size(), 50u);
    for (float w : plan.weights) EXPECT_FLOAT_EQ(w, 1.0f);
  }
}

TEST(PrunerTest, FirstEpochAlwaysFull) {
  PrunerOptions opts;
  opts.mode = PruningMode::kInfoBatch;
  Pruner pruner(opts, 40, {});
  auto plan = pruner.PlanEpoch(0, 10);
  EXPECT_EQ(plan.kept.size(), 40u);
}

TEST(PrunerTest, AnnealEpochsAreFull) {
  PrunerOptions opts;
  opts.mode = PruningMode::kInfoBatch;
  opts.anneal_fraction = 0.2;
  Pruner pruner(opts, 40, {});
  for (size_t i = 0; i < 40; ++i) pruner.RecordLoss(i, i < 20 ? 0.1 : 2.0);
  // Epochs 8 and 9 of 10 fall in the anneal window.
  EXPECT_EQ(pruner.PlanEpoch(8, 10).kept.size(), 40u);
  EXPECT_EQ(pruner.PlanEpoch(9, 10).kept.size(), 40u);
  // Epoch 5 does prune.
  EXPECT_LT(pruner.PlanEpoch(5, 10).kept.size(), 40u);
}

TEST(PrunerTest, InfoBatchPrunesOnlyLowLossSamples) {
  PrunerOptions opts;
  opts.mode = PruningMode::kInfoBatch;
  opts.prune_ratio = 0.8;
  opts.anneal_fraction = 0.0;
  const size_t n = 2000;
  Pruner pruner(opts, n, {});
  // First half low-loss, second half high-loss.
  for (size_t i = 0; i < n; ++i) pruner.RecordLoss(i, i < n / 2 ? 0.1 : 3.0);
  auto plan = pruner.PlanEpoch(3, 100);
  std::set<size_t> kept(plan.kept.begin(), plan.kept.end());
  // All high-loss samples kept with weight 1.
  for (size_t i = n / 2; i < n; ++i) EXPECT_TRUE(kept.count(i));
  // Low-loss samples kept with probability 1-r = 0.2.
  size_t low_kept = 0;
  for (size_t i = 0; i < plan.kept.size(); ++i) {
    if (plan.kept[i] < n / 2) {
      ++low_kept;
      EXPECT_NEAR(plan.weights[i], 5.0f, 1e-5f);  // 1/(1-0.8)
    } else {
      EXPECT_FLOAT_EQ(plan.weights[i], 1.0f);
    }
  }
  EXPECT_NEAR(static_cast<double>(low_kept) / (n / 2), 0.2, 0.05);
}

TEST(PrunerTest, InfoBatchIsUnbiasedInExpectation) {
  // Expected total weight of the epoch equals the full dataset size
  // (the Sect. A.2 unbiasedness argument).
  PrunerOptions opts;
  opts.mode = PruningMode::kInfoBatch;
  opts.prune_ratio = 0.7;
  opts.anneal_fraction = 0.0;
  const size_t n = 1000;
  Pruner pruner(opts, n, {});
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) pruner.RecordLoss(i, rng.Uniform());
  double total_weight = 0;
  const int epochs = 30;
  for (int e = 1; e <= epochs; ++e) {
    auto plan = pruner.PlanEpoch(static_cast<size_t>(e), 1000000);
    total_weight += std::accumulate(plan.weights.begin(), plan.weights.end(),
                                    0.0);
  }
  EXPECT_NEAR(total_weight / epochs, static_cast<double>(n), n * 0.05);
}

TEST(PrunerTest, PaPrunesRedundantHighLossSamples) {
  // Construct: 100 identical high-loss samples (redundant) + 100
  // distinct high-loss samples + 100 low-loss samples.
  const size_t dim = 16;
  std::vector<std::vector<float>> samples;
  Rng rng(7);
  std::vector<float> proto(dim);
  for (float& v : proto) v = static_cast<float>(rng.Normal());
  for (int i = 0; i < 100; ++i) samples.push_back(proto);  // redundant block
  for (int i = 0; i < 200; ++i) {
    std::vector<float> row(dim);
    for (float& v : row) v = static_cast<float>(rng.Normal());
    samples.push_back(row);
  }
  PrunerOptions opts;
  opts.mode = PruningMode::kPa;
  opts.prune_ratio = 0.8;
  opts.anneal_fraction = 0.0;
  Pruner pruner(opts, 300, samples);
  for (size_t i = 0; i < 300; ++i) {
    // Identical redundant block gets identical high loss.
    pruner.RecordLoss(i, i < 100 ? 2.0 : (i < 200 ? 2.0 + 0.001 * i : 0.1));
  }
  auto plan = pruner.PlanEpoch(2, 1000);
  size_t redundant_kept = 0, distinct_kept = 0;
  for (size_t i = 0; i < plan.kept.size(); ++i) {
    if (plan.kept[i] < 100) {
      ++redundant_kept;
      EXPECT_NEAR(plan.weights[i], 5.0f, 1e-5f);
    } else if (plan.kept[i] < 200) {
      ++distinct_kept;
    }
  }
  // The redundant block shares an LSH bucket and a loss bin => pruned at
  // rate ~0.8. Distinct high-loss samples land in singleton buckets and
  // survive entirely.
  EXPECT_LT(redundant_kept, 45u);
  EXPECT_GT(distinct_kept, 85u);
}

TEST(PrunerTest, PaVisitsFewerSamplesThanInfoBatch) {
  const size_t n = 400;
  // Half the samples are near-duplicates of a few prototypes.
  Rng rng(9);
  std::vector<std::vector<float>> samples;
  std::vector<std::vector<float>> protos(4, std::vector<float>(8));
  for (auto& p : protos) {
    for (float& v : p) v = static_cast<float>(rng.Normal());
  }
  for (size_t i = 0; i < n; ++i) {
    if (i < n / 2) {
      auto row = protos[i % 4];
      for (float& v : row) v += static_cast<float>(rng.Normal(0.0, 0.01));
      samples.push_back(row);
    } else {
      std::vector<float> row(8);
      for (float& v : row) v = static_cast<float>(rng.Normal());
      samples.push_back(row);
    }
  }
  PrunerOptions ib;
  ib.mode = PruningMode::kInfoBatch;
  ib.anneal_fraction = 0.0;
  PrunerOptions pa = ib;
  pa.mode = PruningMode::kPa;
  Pruner pruner_ib(ib, n, samples);
  Pruner pruner_pa(pa, n, samples);
  Rng loss_rng(11);
  for (size_t i = 0; i < n; ++i) {
    // Duplicated samples share (high) losses; unique ones vary.
    double loss = i < n / 2 ? 2.0 + 0.01 * double(i % 4) : loss_rng.Uniform(0.0, 4.0);
    pruner_ib.RecordLoss(i, loss);
    pruner_pa.RecordLoss(i, loss);
  }
  size_t ib_total = 0, pa_total = 0;
  for (int e = 1; e <= 10; ++e) {
    ib_total += pruner_ib.PlanEpoch(static_cast<size_t>(e), 1000).kept.size();
    pa_total += pruner_pa.PlanEpoch(static_cast<size_t>(e), 1000).kept.size();
  }
  EXPECT_LT(pa_total, ib_total);
}

TEST(PrunerTest, RecordLossMaintainsRunningMean) {
  PrunerOptions opts;
  Pruner pruner(opts, 2, {});
  pruner.RecordLoss(0, 1.0);
  pruner.RecordLoss(0, 3.0);
  EXPECT_DOUBLE_EQ(pruner.SampleLoss(0), 2.0);
  EXPECT_TRUE(pruner.SampleSeen(0));
  EXPECT_FALSE(pruner.SampleSeen(1));
  EXPECT_DOUBLE_EQ(pruner.MeanLoss(), 2.0);  // only seen samples count
}

TEST(PrunerTest, DeterministicForSeed) {
  PrunerOptions opts;
  opts.mode = PruningMode::kInfoBatch;
  opts.anneal_fraction = 0.0;
  opts.seed = 123;
  auto run = [&] {
    Pruner p(opts, 100, {});
    for (size_t i = 0; i < 100; ++i) p.RecordLoss(i, 0.01 * double(i));
    return p.PlanEpoch(1, 100).kept;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace kdsel::core
