#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/csv.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stringutil.h"

namespace kdsel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kIoError,
        StatusCode::kInternal, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Doubled(StatusOr<int> in) {
  KDSEL_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Index(1000) == b.Index(1000)) ++same;
  }
  EXPECT_LT(same, 20);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, IndexInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(17), 17u);
  }
}

TEST(RngTest, SampleReturnsDistinctIndices) {
  Rng rng(5);
  auto sample = rng.Sample(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t i : sample) EXPECT_LT(i, 50u);
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(5);
  auto sample = rng.Sample(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream should not replay the parent's stream.
  Rng b(42);
  (void)b.engine()();  // advance like Fork did
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.Index(1000000) == a.Index(1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_TRUE(StartsWith("ResNet+KDSelector", "ResNet"));
  EXPECT_FALSE(StartsWith("ResNet", "ResNet+"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kdsel_csv_test.csv").string();
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "x"}, {"2", "y"}};
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto loaded = ReadCsv(path, /*has_header=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileIsIoError) {
  auto result = ReadCsv("/nonexistent/path/file.csv", true);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace kdsel
