// Edge-case and failure-injection tests across modules: degenerate
// inputs (constant series, tiny windows), option extremes, and
// filesystem failures.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/csv.h"
#include "core/selection.h"
#include "core/soft_label.h"
#include "core/trainer.h"
#include "datagen/benchmark.h"
#include "metrics/metrics.h"
#include "selectors/rocket.h"
#include "ts/dataset.h"
#include "ts/window.h"
#include "tsad/detector.h"

namespace kdsel {
namespace {

/// Every detector must handle a constant series gracefully: no crash,
/// finite scores (or a clean error for genuinely impossible cases).
class ConstantSeriesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConstantSeriesTest, DetectorSurvivesConstantInput) {
  auto detector = tsad::BuildDetector(GetParam(), 1);
  ASSERT_TRUE(detector.ok());
  ts::TimeSeries series("flat", std::vector<float>(400, 3.14f));
  ASSERT_TRUE(series.SetLabels(std::vector<uint8_t>(400, 0)).ok());
  auto scores = (*detector)->Score(series);
  if (!scores.ok()) return;  // A clean error is acceptable.
  ASSERT_EQ(scores->size(), 400u);
  for (float s : *scores) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_P(ConstantSeriesTest, DetectorSurvivesRampInput) {
  auto detector = tsad::BuildDetector(GetParam(), 1);
  ASSERT_TRUE(detector.ok());
  std::vector<float> ramp(400);
  for (size_t i = 0; i < 400; ++i) ramp[i] = static_cast<float>(i);
  ts::TimeSeries series("ramp", std::move(ramp));
  auto scores = (*detector)->Score(series);
  if (!scores.ok()) return;
  for (float s : *scores) EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConstantSeriesTest,
                         ::testing::ValuesIn(tsad::CanonicalModelNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(WindowEdgeTest, StrideLargerThanLength) {
  ts::TimeSeries series("x", std::vector<float>(100, 1.0f));
  for (size_t i = 0; i < 100; ++i) {
    series.mutable_values()[i] = static_cast<float>(i);
  }
  ts::WindowOptions opts;
  opts.length = 10;
  opts.stride = 40;
  opts.z_normalize = false;
  auto windows = ts::ExtractWindows(series, 0, opts);
  ASSERT_TRUE(windows.ok());
  // Offsets 0, 40, 80, then the flush-to-end window at 90.
  ASSERT_EQ(windows->size(), 4u);
  EXPECT_EQ((*windows)[3].offset, 90u);
}

TEST(WindowEdgeTest, SeriesExactlyOneWindow) {
  ts::TimeSeries series("x", std::vector<float>(64, 2.0f));
  ts::WindowOptions opts;
  opts.length = 64;
  auto windows = ts::ExtractWindows(series, 0, opts);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->size(), 1u);
}

TEST(MetricsEdgeTest, SingleElementInputs) {
  auto auc = metrics::AucPr({0.5f}, std::vector<uint8_t>{1});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
  auto roc = metrics::AucRoc({0.5f}, std::vector<uint8_t>{1});
  ASSERT_TRUE(roc.ok());
  EXPECT_DOUBLE_EQ(*roc, 0.5);  // degenerate: no negatives
}

TEST(RocketEdgeTest, TinyWindowsClampDilation) {
  selectors::RocketSelector rocket(selectors::RocketSelector::Options{});
  selectors::TrainingData data;
  data.num_classes = 2;
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    std::vector<float> w(12);  // barely larger than the kernel length 9
    int c = i % 2;
    for (size_t t = 0; t < w.size(); ++t) {
      w[t] = static_cast<float>(c ? t : -double(t)) +
             static_cast<float>(0.1 * rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  ASSERT_TRUE(rocket.Fit(data).ok());
  auto pred = rocket.Predict(data.windows);
  ASSERT_TRUE(pred.ok());
  size_t hits = 0;
  for (size_t i = 0; i < pred->size(); ++i) {
    hits += ((*pred)[i] == data.labels[i]);
  }
  EXPECT_GT(hits, 25u);
}

TEST(TrainerEdgeTest, BatchLargerThanDataset) {
  core::SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    std::vector<float> w(16);
    for (float& v : w) v = static_cast<float>(rng.Normal());
    w[0] += i % 2 ? 3.0f : -3.0f;
    data.windows.push_back(std::move(w));
    data.labels.push_back(i % 2);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.batch_size = 512;  // much larger than the 10 samples
  auto selector = core::TrainSelector(data, opts, nullptr);
  ASSERT_TRUE(selector.ok()) << selector.status();
}

TEST(TrainerEdgeTest, MkiSkipsSingletonRemainderBatch) {
  // 9 samples with batch 8 leaves a 1-sample remainder; with MKI on,
  // InfoNCE has no negatives there, so the trainer must skip it rather
  // than divide by zero.
  core::SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(3);
  for (int i = 0; i < 9; ++i) {
    std::vector<float> w(16);
    for (float& v : w) v = static_cast<float>(rng.Normal());
    data.windows.push_back(std::move(w));
    data.labels.push_back(i % 2);
    data.texts.push_back(i % 2 ? "fast series" : "slow series");
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.batch_size = 8;
  opts.use_mki = true;
  auto selector = core::TrainSelector(data, opts, nullptr);
  ASSERT_TRUE(selector.ok()) << selector.status();
}

TEST(SelectionEdgeTest, SeriesShorterThanWindowStillSelects) {
  core::SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    std::vector<float> w(32);
    for (float& v : w) v = static_cast<float>(rng.Normal());
    data.windows.push_back(std::move(w));
    data.labels.push_back(i % 2);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 1;
  auto selector = core::TrainSelector(data, opts, nullptr);
  ASSERT_TRUE(selector.ok());

  ts::TimeSeries tiny("tiny", std::vector<float>(10, 1.0f));
  ts::WindowOptions wo;
  wo.length = 32;
  auto sel = core::SelectSeriesModel(**selector, tiny, wo, 2);
  ASSERT_TRUE(sel.ok()) << sel.status();  // edge-replicated single window
  EXPECT_EQ(sel->num_windows, 1u);
}

TEST(CsvEdgeTest, WriteToUnwritablePathFails) {
  CsvTable table;
  table.rows = {{"1"}};
  EXPECT_FALSE(WriteCsv("/nonexistent_dir/foo.csv", table).ok());
}

TEST(DatasetEdgeTest, LoadMissingManifestFails) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kdsel_empty_ds").string();
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(ts::LoadDataset(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(DatagenEdgeTest, GenerateSeriesRejectsTooShort) {
  Rng rng(1);
  EXPECT_FALSE(
      datagen::GenerateSeries(datagen::Family::kEcg, 10, 0, rng).ok());
}

TEST(MetadataEdgeTest, MultipleAnomalyLengthsListed) {
  ts::TimeSeries series("x", std::vector<float>(200, 1.0f));
  ASSERT_TRUE(series.MarkAnomaly(10, 20).ok());
  ASSERT_TRUE(series.MarkAnomaly(50, 55).ok());
  series.SetMeta("dataset", "NAB");
  series.SetMeta("domain", "cloud metrics");
  std::string text = datagen::BuildMetadataText(series);
  EXPECT_NE(text.find("There are 2 anomalies"), std::string::npos);
  EXPECT_NE(text.find("10, 5"), std::string::npos);
}

TEST(SoftLabelEdgeTest, IdenticalPerformancesGiveUniform) {
  std::vector<std::vector<float>> perf{{0.5f, 0.5f, 0.5f, 0.5f}};
  auto soft = core::BuildSoftLabels(perf, 0.2);
  ASSERT_TRUE(soft.ok());
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(soft->At(0, j), 0.25f, 1e-5f);
  }
}

TEST(PrunerEdgeTest, AllSameLossesPruneNothingAboveMean) {
  core::PrunerOptions opts;
  opts.mode = core::PruningMode::kInfoBatch;
  opts.anneal_fraction = 0.0;
  core::Pruner pruner(opts, 100, {});
  for (size_t i = 0; i < 100; ++i) pruner.RecordLoss(i, 1.0);
  // avg_loss == mean for every sample => none are "low loss" (strict <).
  auto plan = pruner.PlanEpoch(1, 100);
  EXPECT_EQ(plan.kept.size(), 100u);
}

}  // namespace
}  // namespace kdsel
