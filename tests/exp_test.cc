#include <gtest/gtest.h>

#include <filesystem>

#include "exp/env.h"
#include "exp/tables.h"

namespace kdsel::exp {
namespace {

/// One tiny shared environment for the whole test binary (building it
/// runs all 12 detectors on 32 short series, so reuse it).
class ExpEnvTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.series_per_family = 2;
    config.min_length = 256;
    config.max_length = 320;
    config.window_length = 32;
    config.seed = 7;
    config.cache_dir =
        (std::filesystem::temp_directory_path() / "kdsel_exp_cache").string();
    std::filesystem::remove_all(config.cache_dir);
    auto created = BenchmarkEnvironment::Create(config);
    ASSERT_TRUE(created.ok()) << created.status();
    env_ = created->release();
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(env_->config().cache_dir);
    delete env_;
    env_ = nullptr;
  }

  static BenchmarkEnvironment* env_;
};

BenchmarkEnvironment* ExpEnvTest::env_ = nullptr;

TEST_F(ExpEnvTest, HasTwelveModelsAndFourteenTestDatasets) {
  EXPECT_EQ(env_->num_models(), 12u);
  EXPECT_EQ(env_->test_dataset_names().size(), 14u);
  for (const auto& name : env_->test_dataset_names()) {
    EXPECT_NE(name, "Dodgers");
    EXPECT_NE(name, "Occupancy");
  }
}

TEST_F(ExpEnvTest, TrainSeriesPooledFromAllDatasets) {
  // 16 families x 2 series x 0.5 train fraction = 16 training series.
  EXPECT_EQ(env_->train_series().size(), 16u);
  EXPECT_EQ(env_->train_performance().size(), 16u);
  for (const auto& row : env_->train_performance()) {
    EXPECT_EQ(row.size(), 12u);
  }
}

TEST_F(ExpEnvTest, BuildTrainingDataIsConsistent) {
  auto data = env_->BuildTrainingData();
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->num_classes, 12u);
  EXPECT_GT(data->size(), env_->train_series().size());
  EXPECT_EQ(data->windows[0].size(), 32u);
}

TEST_F(ExpEnvTest, OracleBeatsEveryFixedModel) {
  auto oracle = env_->EvaluateFixedModel(-1);
  ASSERT_TRUE(oracle.ok());
  for (int model = 0; model < 12; ++model) {
    auto fixed = env_->EvaluateFixedModel(model);
    ASSERT_TRUE(fixed.ok());
    EXPECT_GE((*oracle)["Average"] + 1e-9, (*fixed)["Average"]);
  }
  EXPECT_GT((*oracle)["Average"], 0.0);
}

TEST_F(ExpEnvTest, CacheReloadGivesSameMatrix) {
  // Second Create with the same config must hit the cache and produce
  // identical performance rows.
  auto again = BenchmarkEnvironment::Create(env_->config());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ((*again)->train_performance().size(),
            env_->train_performance().size());
  for (size_t i = 0; i < env_->train_performance().size(); ++i) {
    for (size_t j = 0; j < 12; ++j) {
      EXPECT_NEAR((*again)->train_performance()[i][j],
                  env_->train_performance()[i][j], 1e-5);
    }
  }
}

TEST_F(ExpEnvTest, EvaluateSelectorWithOracleLookalike) {
  // A trivial "selector" that always predicts model 0 must match
  // EvaluateFixedModel(0).
  class ConstantSelector : public selectors::Selector {
   public:
    std::string name() const override { return "Constant"; }
    Status Fit(const selectors::TrainingData&) override {
      return Status::OK();
    }
    StatusOr<std::vector<int>> Predict(
        const std::vector<std::vector<float>>& windows) const override {
      return std::vector<int>(windows.size(), 0);
    }
  };
  ConstantSelector constant;
  auto via_selector = env_->EvaluateSelector(constant);
  auto via_fixed = env_->EvaluateFixedModel(0);
  ASSERT_TRUE(via_selector.ok() && via_fixed.ok());
  for (const auto& [name, value] : *via_fixed) {
    EXPECT_NEAR(value, (*via_selector)[name], 1e-9) << name;
  }
}

TEST(ExperimentConfigTest, CacheKeyReflectsInputs) {
  ExperimentConfig a, b;
  EXPECT_EQ(a.CacheKey(), b.CacheKey());
  b.seed = 99;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = a;
  b.series_per_family = 99;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"Method", "AUC-PR", "Time"});
  table.AddRow({"Standard", "0.4210", "281.90"});
  table.AddRow("KDSelector", {0.461, 282.03}, 2);
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Method"), std::string::npos);
  EXPECT_NE(out.find("| Standard"), std::string::npos);
  EXPECT_NE(out.find("0.46"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, MissingCellsRenderDash) {
  Table table({"A", "B", "C"});
  table.AddRow({"only"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(TableTest, PerDatasetFormatter) {
  std::map<std::string, double> m1{{"ECG", 0.5}, {"Average", 0.5}};
  std::map<std::string, double> m2{{"ECG", 0.7}, {"Average", 0.7}};
  std::string out =
      FormatPerDatasetTable({"ECG"}, {"Standard", "Ours"}, {m1, m2});
  EXPECT_NE(out.find("ECG"), std::string::npos);
  EXPECT_NE(out.find("0.5000"), std::string::npos);
  EXPECT_NE(out.find("0.7000"), std::string::npos);
  EXPECT_NE(out.find("Average"), std::string::npos);
}

}  // namespace
}  // namespace kdsel::exp
