// Bitwise-determinism guarantees of the shared thread pool: selector
// training with every KDSelector module enabled (PISL + MKI + PA) and
// the detector performance matrix must produce identical results at
// KDSEL_THREADS=1 and KDSEL_THREADS=8. The pool's static chunking plus
// fixed-order kernel accumulation make this exact, not approximate —
// and it must hold for EVERY compiled SIMD kernel variant, since each
// variant fixes its own accumulation order as a function of shapes only.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/families.h"
#include "nn/kernels/kernels.h"
#include "tsad/detector.h"

namespace kdsel {
namespace {

core::SelectorTrainingData MakeTrainingData() {
  core::SelectorTrainingData data;
  data.num_classes = 3;
  Rng rng(11);
  // Shared layout: one performance row / text per "series", four windows
  // each — the same shape BuildSelectorTrainingData emits.
  const size_t kSeries = 15, kWindowsPer = 4, kLen = 32;
  for (size_t s = 0; s < kSeries; ++s) {
    const int label = static_cast<int>(s % data.num_classes);
    std::vector<float> perf(data.num_classes, 0.2f);
    perf[static_cast<size_t>(label)] = 0.9f;
    data.performance.push_back(std::move(perf));
    data.texts.push_back("This is a time series from dataset D" +
                         std::to_string(s % 5));
    for (size_t w = 0; w < kWindowsPer; ++w) {
      std::vector<float> window(kLen);
      for (size_t t = 0; t < kLen; ++t) {
        window[t] = static_cast<float>(
            std::sin(0.3 * static_cast<double>(t) * (1.0 + label)) +
            0.1 * rng.Normal());
      }
      data.windows.push_back(std::move(window));
      data.labels.push_back(label);
      data.performance_index.push_back(s);
      data.text_index.push_back(s);
    }
  }
  return data;
}

struct TrainOutcome {
  std::vector<uint32_t> weight_bits;
  std::vector<double> epoch_loss;
};

TrainOutcome TrainOnce(const core::SelectorTrainingData& data) {
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 3;
  opts.batch_size = 16;
  opts.seed = 4;
  opts.use_pisl = true;
  opts.use_mki = true;
  opts.pruning.mode = core::PruningMode::kPa;
  core::TrainStats stats;
  auto selector = core::TrainSelector(data, opts, &stats);
  KDSEL_CHECK(selector.ok());

  TrainOutcome outcome;
  outcome.epoch_loss = stats.epoch_loss;
  auto append = [&outcome](const nn::Tensor& t) {
    for (size_t i = 0; i < t.size(); ++i) {
      uint32_t bits = 0;
      const float v = t[i];
      std::memcpy(&bits, &v, sizeof(bits));
      outcome.weight_bits.push_back(bits);
    }
  };
  for (nn::Parameter* p : (*selector)->backbone().Parameters()) {
    append(p->value);
  }
  for (nn::Parameter* p : (*selector)->classifier().Parameters()) {
    append(p->value);
  }
  return outcome;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::ResetGlobalForTesting(0);
    nn::kernels::ResetDispatchForTesting();
  }
};

TEST_F(DeterminismTest, TrainingIsBitwiseIdenticalAcrossThreadCounts) {
  const core::SelectorTrainingData data = MakeTrainingData();

  // Cross-variant results may differ (different accumulation orders);
  // within one variant, the thread count must not change a single bit.
  for (nn::kernels::Variant variant : nn::kernels::SupportedVariants()) {
    SCOPED_TRACE(nn::kernels::VariantName(variant));
    nn::kernels::ResetDispatchForTesting(variant);

    ThreadPool::ResetGlobalForTesting(1);
    const TrainOutcome serial = TrainOnce(data);
    ThreadPool::ResetGlobalForTesting(8);
    const TrainOutcome parallel = TrainOnce(data);

    ASSERT_FALSE(serial.weight_bits.empty());
    ASSERT_EQ(serial.weight_bits.size(), parallel.weight_bits.size());
    EXPECT_EQ(serial.weight_bits, parallel.weight_bits);
    ASSERT_EQ(serial.epoch_loss.size(), parallel.epoch_loss.size());
    for (size_t e = 0; e < serial.epoch_loss.size(); ++e) {
      EXPECT_EQ(serial.epoch_loss[e], parallel.epoch_loss[e]) << "epoch " << e;
    }
  }
}

TEST_F(DeterminismTest, PerformanceMatrixIsIdenticalAcrossThreadCounts) {
  auto models = tsad::BuildDefaultModelSet(3);
  std::vector<ts::TimeSeries> series;
  Rng rng(21);
  for (size_t i = 0; i < 3; ++i) {
    auto s = datagen::GenerateSeries(datagen::Family::kYahoo, 320, i, rng);
    ASSERT_TRUE(s.ok());
    series.push_back(std::move(s).value());
  }
  std::vector<const ts::TimeSeries*> ptrs;
  for (const auto& s : series) ptrs.push_back(&s);

  ThreadPool::ResetGlobalForTesting(1);
  auto serial = core::EvaluatePerformanceMatrix(models, ptrs);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ThreadPool::ResetGlobalForTesting(8);
  auto parallel = core::EvaluatePerformanceMatrix(models, ptrs);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(*serial, *parallel);
}

}  // namespace
}  // namespace kdsel
