#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "net/listener.h"
#include "net/server.h"
#include "net/shedder.h"
#include "obs/metrics.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace kdsel::net {
namespace {

// ---------------------------------------------------------------------------
// Shedder state machine (deterministic, fake clock: time is just the
// int64 passed to Admit()).

ShedderOptions TestShedder(double slo_us) {
  ShedderOptions opts;
  opts.slo_us = slo_us;
  opts.exit_fraction = 0.5;
  opts.eval_interval_us = 1000;
  opts.min_samples = 4;
  return opts;
}

TEST(ShedderTest, DisabledShedderAdmitsEverything) {
  Shedder shedder(TestShedder(0.0));
  for (int i = 0; i < 100; ++i) shedder.RecordLatency(1e9);
  for (int64_t t = 0; t < 100000; t += 500) {
    EXPECT_TRUE(shedder.Admit(t));
  }
  EXPECT_FALSE(shedder.shedding());
  EXPECT_EQ(shedder.shed_count(), 0u);
  EXPECT_EQ(shedder.evaluations(), 0u);
}

TEST(ShedderTest, EntersSheddingWhenWindowP99ExceedsSlo) {
  Shedder shedder(TestShedder(1000.0));
  // t=0: first evaluation sees an empty window -> keep admitting.
  EXPECT_TRUE(shedder.Admit(0));
  EXPECT_FALSE(shedder.shedding());
  // A window of latencies far above the SLO (far enough that the ~19%
  // geometric-bucket quantile error cannot blur the comparison).
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(10000.0);
  // Still inside the eval interval: the state cannot change yet.
  EXPECT_TRUE(shedder.Admit(500));
  // Next interval: evaluation flips to shedding, the request is refused.
  EXPECT_FALSE(shedder.Admit(1000));
  EXPECT_TRUE(shedder.shedding());
  EXPECT_EQ(shedder.shed_count(), 1u);
}

TEST(ShedderTest, MinSamplesGateStopsColdStartOutliers) {
  Shedder shedder(TestShedder(1000.0));
  EXPECT_TRUE(shedder.Admit(0));
  // Fewer than min_samples (4) slow requests: not enough evidence.
  shedder.RecordLatency(50000.0);
  shedder.RecordLatency(50000.0);
  EXPECT_TRUE(shedder.Admit(1000));
  EXPECT_FALSE(shedder.shedding());
}

TEST(ShedderTest, HysteresisHoldsBetweenExitAndEnterThresholds) {
  Shedder shedder(TestShedder(1000.0));
  EXPECT_TRUE(shedder.Admit(0));
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(10000.0);
  EXPECT_FALSE(shedder.Admit(1000));  // Enter shedding.
  ASSERT_TRUE(shedder.shedding());

  // Draining backlog lands between exit (500us) and enter (1000us)
  // thresholds: the shedder must HOLD, not flap.
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(700.0);
  EXPECT_FALSE(shedder.Admit(2000));
  EXPECT_TRUE(shedder.shedding());

  // Clearly below the exit threshold: recover.
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(100.0);
  EXPECT_TRUE(shedder.Admit(3000));
  EXPECT_FALSE(shedder.shedding());
}

TEST(ShedderTest, EmptyWindowMeansDrainedBacklogAndRecovers) {
  Shedder shedder(TestShedder(1000.0));
  EXPECT_TRUE(shedder.Admit(0));
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(10000.0);
  EXPECT_FALSE(shedder.Admit(1000));
  ASSERT_TRUE(shedder.shedding());
  // Nothing completed during the shed interval (backlog fully drained
  // before it could record): no latency evidence left, so admit again.
  EXPECT_TRUE(shedder.Admit(2000));
  EXPECT_FALSE(shedder.shedding());
}

TEST(ShedderTest, ShedCounterCountsEveryRefusal) {
  Shedder shedder(TestShedder(1000.0));
  EXPECT_TRUE(shedder.Admit(0));
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(10000.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(shedder.Admit(1000 + i));
  }
  EXPECT_EQ(shedder.shed_count(), 5u);
}

TEST(ShedderTest, WindowResetsBetweenEvaluations) {
  Shedder shedder(TestShedder(1000.0));
  EXPECT_TRUE(shedder.Admit(0));
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(10000.0);
  EXPECT_FALSE(shedder.Admit(1000));  // Shedding; window reset here.
  // Old samples must not leak into the next window: with only fast
  // completions since the reset, the shedder recovers.
  for (int i = 0; i < 16; ++i) shedder.RecordLatency(50.0);
  EXPECT_TRUE(shedder.Admit(2000));
  EXPECT_FALSE(shedder.shedding());
}

// ---------------------------------------------------------------------------
// Line peek (the shed fast path's structural scan).

TEST(PeekTest, DefaultsToSelectWithoutOp) {
  const LinePeek peek =
      PeekRequestLine(R"({"id":42,"selector":"s","values":[1,2]})");
  EXPECT_TRUE(peek.is_select);
  EXPECT_EQ(peek.id, 42);
}

TEST(PeekTest, ReadsExplicitOpAndId) {
  EXPECT_TRUE(PeekRequestLine(R"({"op":"select","id":7})").is_select);
  EXPECT_FALSE(PeekRequestLine(R"({"op":"stats","id":7})").is_select);
  EXPECT_FALSE(PeekRequestLine(R"({"op":"quit"})").is_select);
  EXPECT_EQ(PeekRequestLine(R"({"op":"stats","id":7})").id, 7);
  EXPECT_EQ(PeekRequestLine(R"({"id":-3,"op":"select"})").id, -3);
  EXPECT_EQ(PeekRequestLine(R"({"op":"quit"})").id, -1);
}

TEST(PeekTest, ToleratesWhitespace) {
  const LinePeek peek =
      PeekRequestLine(R"({ "op" : "stats" , "id" : 19 })");
  EXPECT_FALSE(peek.is_select);
  EXPECT_EQ(peek.id, 19);
}

TEST(PeekTest, IgnoresNestedLookalikeKeys) {
  // "op" here is not preceded by '{' or ',' at top level-ish positions
  // (it is a value, not a key), so the default (select) holds.
  const LinePeek peek = PeekRequestLine(R"({"name":"op","id":5})");
  EXPECT_TRUE(peek.is_select);
  EXPECT_EQ(peek.id, 5);
}

// ---------------------------------------------------------------------------
// Host:port parsing.

TEST(ListenerTest, ParsesHostPort) {
  auto hp = ParseHostPort("127.0.0.1:7070");
  ASSERT_TRUE(hp.ok()) << hp.status();
  EXPECT_EQ(hp->host, "127.0.0.1");
  EXPECT_EQ(hp->port, 7070);

  hp = ParseHostPort(":0");
  ASSERT_TRUE(hp.ok()) << hp.status();
  EXPECT_EQ(hp->host, "");
  EXPECT_EQ(hp->port, 0);

  EXPECT_FALSE(ParseHostPort("nope").ok());
  EXPECT_FALSE(ParseHostPort("h:99999").ok());
  EXPECT_FALSE(ParseHostPort("h:12x").ok());
}

// ---------------------------------------------------------------------------
// Loopback integration.

/// Trains a small ConvNet selector on separable synthetic windows
/// (mirrors serve_test's helper; window length 16).
std::unique_ptr<core::TrainedSelector> TrainTinySelector(uint64_t seed = 1) {
  core::SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    const int c = i % 2;
    std::vector<float> w(16);
    for (size_t t = 0; t < 16; ++t) {
      w[t] = std::sin((0.3 + 0.9 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = seed;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

/// Blocking loopback NDJSON client.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);  // kdsel-lint: allow(raw-socket)
    KDSEL_CHECK(fd_ >= 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    KDSEL_CHECK(connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
  }
  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  void Send(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = write(fd_, framed.data() + off, framed.size() - off);
      KDSEL_CHECK(n > 0);
      off += static_cast<size_t>(n);
    }
  }

  /// Reads one '\n'-terminated line; empty optional-ish "" on EOF.
  std::string ReadLine() {
    for (;;) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";  // EOF/error: tests treat as closed.
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the peer closed the connection (after buffered lines).
  bool AtEof() { return ReadLine().empty(); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string SelectLine(int id, bool detect = false) {
  std::string line = "{\"id\":" + std::to_string(id) +
                     ",\"op\":\"select\",\"selector\":\"tiny\",\"detect\":";
  line += detect ? "true" : "false";
  line += ",\"values\":[";
  for (int t = 0; t < 16; ++t) {
    if (t > 0) line.push_back(',');
    line += std::to_string(0.1 * t);
  }
  line += "]}";
  return line;
}

struct LoopbackServer {
  explicit LoopbackServer(NetServerOptions net_opts = {},
                          serve::ServerOptions opts = {}) {
    registry = std::make_unique<serve::SelectorRegistry>(
        core::SelectorManager("/nonexistent-net-test"));
    KDSEL_CHECK(registry->Register("tiny", TrainTinySelector()).ok());
    opts.num_workers = 2;
    server = std::make_unique<serve::InferenceServer>(registry.get(), opts);
    KDSEL_CHECK(server->Start().ok());
    net_opts.listen = "127.0.0.1:0";
    net = std::make_unique<NetServer>(server.get(), net_opts);
    KDSEL_CHECK(net->Start().ok());
  }
  ~LoopbackServer() {
    net->Stop();
    server->Stop();
  }

  std::unique_ptr<serve::SelectorRegistry> registry;
  std::unique_ptr<serve::InferenceServer> server;
  std::unique_ptr<NetServer> net;
};

TEST(NetServerTest, SelectRoundTripOverLoopback) {
  LoopbackServer loopback;
  TestClient client(loopback.net->port());
  client.Send(SelectLine(7));
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", -1), 7);
  EXPECT_TRUE(reply->GetBool("ok", false));
  EXPECT_EQ(reply->GetNumber("num_windows", 0), 1);
  EXPECT_FALSE(reply->GetString("model", "").empty());
}

TEST(NetServerTest, PipelinedRepliesKeepSubmissionOrder) {
  LoopbackServer loopback;
  TestClient client(loopback.net->port());
  constexpr int kRequests = 32;
  for (int i = 0; i < kRequests; ++i) client.Send(SelectLine(1000 + i));
  for (int i = 0; i < kRequests; ++i) {
    auto reply = serve::Json::Parse(client.ReadLine());
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->GetNumber("id", -1), 1000 + i);
    EXPECT_TRUE(reply->GetBool("ok", false));
  }
}

TEST(NetServerTest, ShardsServeConcurrentClients) {
  NetServerOptions net_opts;
  net_opts.shards = 2;
  LoopbackServer loopback(net_opts);
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<TestClient>(loopback.net->port()));
  }
  for (int c = 0; c < 6; ++c) clients[c]->Send(SelectLine(c));
  for (int c = 0; c < 6; ++c) {
    auto reply = serve::Json::Parse(clients[c]->ReadLine());
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->GetNumber("id", -1), c);
  }
  EXPECT_GE(loopback.net->connections_accepted(), 6u);
}

TEST(NetServerTest, MalformedLineRepliesAndSessionContinues) {
  LoopbackServer loopback;
  TestClient client(loopback.net->port());
  // Invalid JSON: no id recoverable.
  client.Send("this is not json");
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", 0), -1);
  EXPECT_FALSE(reply->GetBool("ok", true));

  // Valid JSON object, invalid request: the error echoes the id.
  client.Send(R"({"id":55,"op":"select","selector":"tiny","values":[]})");
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", 0), 55);
  EXPECT_FALSE(reply->GetBool("ok", true));

  // The session is still alive.
  client.Send(SelectLine(56));
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", 0), 56);
  EXPECT_TRUE(reply->GetBool("ok", false));
}

TEST(NetServerTest, StatsReportShedCounterOverTheWire) {
  LoopbackServer loopback;
  TestClient client(loopback.net->port());
  client.Send(SelectLine(1));
  ASSERT_FALSE(client.ReadLine().empty());
  client.Send(R"({"op":"stats","id":2})");
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", -1), 2);
  const serve::Json* stats = reply->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->GetNumber("shed", -1), 0);
  EXPECT_GE(stats->GetNumber("completed", -1), 1);
}

TEST(NetServerTest, QuitDrainsRepliesThenCloses) {
  LoopbackServer loopback;
  TestClient client(loopback.net->port());
  client.Send(SelectLine(9));
  client.Send(R"({"op":"quit"})");
  client.Send(SelectLine(10));  // After quit: must be dropped.
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", -1), 9);
  EXPECT_TRUE(client.AtEof());
}

TEST(NetServerTest, OversizedLineGetsErrorAndClose) {
  NetServerOptions net_opts;
  net_opts.max_line_bytes = 256;
  LoopbackServer loopback(net_opts);
  TestClient client(loopback.net->port());
  std::string huge = "{\"id\":1,\"values\":[";
  huge.append(4096, '1');  // No newline until way past the cap.
  client.Send(huge);
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->GetBool("ok", true));
  EXPECT_NE(reply->GetString("error", "").find("exceeds"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
}

TEST(NetServerTest, StopDrainsInFlightRequests) {
  auto loopback = std::make_unique<LoopbackServer>();
  TestClient client(loopback->net->port());
  client.Send(SelectLine(77));
  // Race Stop() against the in-flight request: the reply must still be
  // delivered before the connection closes.
  auto reply_line = client.ReadLine();
  loopback->net->Stop();
  auto reply = serve::Json::Parse(reply_line);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", -1), 77);
  EXPECT_TRUE(client.AtEof());  // Stop closed the connection cleanly.
  loopback.reset();
}

TEST(NetServerTest, ShedsUnderSloPressureAndRecovers) {
  // slo_us is microscopic and evaluation is continuous, so the state
  // machine is driven deterministically by the request sequence: the
  // first request's (real, >1us) latency makes the next evaluation shed
  // the second request; with nothing accepted after that, the following
  // evaluation sees an empty window and recovers.
  NetServerOptions net_opts;
  net_opts.slo_ms = 1e-3;  // 1 microsecond p99 target.
  net_opts.shedder.eval_interval_us = 0;
  net_opts.shedder.min_samples = 1;
  LoopbackServer loopback(net_opts);
  TestClient client(loopback.net->port());

  client.Send(SelectLine(1));
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->GetBool("ok", false));

  client.Send(SelectLine(2));
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->GetBool("ok", true));
  EXPECT_EQ(reply->GetString("error", ""), "overloaded");
  EXPECT_EQ(reply->GetNumber("id", -1), 2);

  // Recovery: the shed request recorded no latency, so the next window
  // is empty and admission resumes.
  client.Send(SelectLine(3));
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->GetBool("ok", false));
  EXPECT_EQ(reply->GetNumber("id", -1), 3);

  EXPECT_GE(loopback.net->shedder().shed_count(), 1u);
  EXPECT_EQ(loopback.server->stats().shed(), 1u);
}

/// SelectLine with a client-supplied trace id spliced in.
std::string TracedSelectLine(int id, const std::string& trace) {
  std::string line = SelectLine(id);
  line.insert(1, "\"trace\":\"" + trace + "\",");
  return line;
}

TEST(NetServerTest, TraceEchoRoundTripsOnOkAndErrorReplies) {
  LoopbackServer loopback;
  TestClient client(loopback.net->port());

  // Client trace comes back on the ok reply verbatim.
  client.Send(TracedSelectLine(7, "req-abc.1:2"));
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->GetBool("ok", false));
  EXPECT_EQ(reply->GetString("trace", ""), "req-abc.1:2");

  // Error replies echo it too (empty values -> InvalidArgument).
  client.Send(
      R"({"id":55,"trace":"err-9","op":"select","selector":"tiny","values":[]})");
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->GetBool("ok", true));
  EXPECT_EQ(reply->GetString("trace", ""), "err-9");

  // A trace outside the sanitized charset is dropped, not echoed; the
  // server substitutes a generated `s<shard>-<seq>` id instead.
  client.Send(TracedSelectLine(8, "bad trace"));
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->GetBool("ok", false));
  EXPECT_EQ(reply->GetString("trace", "").rfind("s0-", 0), 0u);

  // No trace at all: same generated-id scheme.
  client.Send(SelectLine(9));
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetString("trace", "").rfind("s0-", 0), 0u);
}

TEST(NetServerTest, TraceEchoedOnShedRepliesAndFlightRecorded) {
  // Same deterministic shed sequence as ShedsUnderSloPressureAndRecovers:
  // request 1 is served, request 2 is refused by admission control.
  NetServerOptions net_opts;
  net_opts.slo_ms = 1e-3;
  net_opts.shedder.eval_interval_us = 0;
  net_opts.shedder.min_samples = 1;
  LoopbackServer loopback(net_opts);
  TestClient client(loopback.net->port());

  client.Send(TracedSelectLine(1, "warm-1"));
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->GetBool("ok", false));

  client.Send(TracedSelectLine(2, "shed-me"));
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->GetBool("ok", true));
  EXPECT_EQ(reply->GetString("error", ""), "overloaded");
  EXPECT_EQ(reply->GetString("trace", ""), "shed-me");

  // Flight records land after the reply bytes go out (RecordFlushed
  // runs at the tail of FlushConn), so a later round-trip on the same
  // connection is the barrier that makes both records visible.
  client.Send(R"({"op":"stats","id":99})");
  ASSERT_FALSE(client.ReadLine().empty());

  // Both requests are in the flight recorder with their verdicts; the
  // shed record still carries an end-to-end total.
  const auto recent = loopback.net->flight_recorder().RecentSnapshot();
  bool saw_ok = false;
  bool saw_shed = false;
  for (const auto& record : recent) {
    if (std::string(record.trace) == "warm-1") {
      saw_ok = true;
      EXPECT_EQ(record.verdict, obs::FlightRecord::Verdict::kOk);
      EXPECT_GT(record.total_us, 0.0);
      EXPECT_GT(record.compute_us, 0.0);
    }
    if (std::string(record.trace) == "shed-me") {
      saw_shed = true;
      EXPECT_EQ(record.verdict, obs::FlightRecord::Verdict::kShed);
      EXPECT_EQ(record.compute_us, 0.0);  // Never ran.
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_shed);
  EXPECT_EQ(loopback.net->flight_recorder().recorded(), 2u);
}

TEST(NetServerTest, OpsSnapshotExportsStatsShedderAndStageHistograms) {
  obs::MetricsRegistry::Global().ResetValuesForTesting();
  NetServerOptions net_opts;
  net_opts.slo_ms = 250.0;  // Enabled but never binding.
  LoopbackServer loopback(net_opts);
  TestClient client(loopback.net->port());
  client.Send(SelectLine(1));
  ASSERT_FALSE(client.ReadLine().empty());

  client.Send(R"({"op":"ops","id":2,"view":"snapshot"})");
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->GetNumber("id", -1), 2);
  EXPECT_TRUE(reply->GetBool("ok", false));

  const serve::Json* stats = reply->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->GetNumber("completed", -1), 1);
  EXPECT_EQ(stats->GetNumber("shed_rate", -1), 0);

  const serve::Json* shedder = reply->Find("shedder");
  ASSERT_NE(shedder, nullptr);
  ASSERT_TRUE(shedder->is_object());
  EXPECT_TRUE(shedder->GetBool("enabled", false));
  EXPECT_EQ(shedder->GetString("state", ""), "admit");
  EXPECT_EQ(shedder->GetNumber("shed", -1), 0);

  // Every request stage histogram is populated once one reply flushed.
  const serve::Json* metrics = reply->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const serve::Json* histograms = metrics->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  for (const char* name :
       {"kdsel.net.stage.queue", "kdsel.net.stage.batch_wait",
        "kdsel.net.stage.compute", "kdsel.net.stage.write", "kdsel.net.e2e"}) {
    const serve::Json* hist = histograms->Find(name);
    ASSERT_NE(hist, nullptr) << name;
    EXPECT_GE(hist->GetNumber("samples", -1), 1) << name;
  }
}

TEST(NetServerTest, OpsFlightAndPrometheusViewsOverTheWire) {
  LoopbackServer loopback;
  TestClient client(loopback.net->port());
  client.Send(TracedSelectLine(4, "fl-1"));
  ASSERT_FALSE(client.ReadLine().empty());

  client.Send(R"({"op":"ops","id":5,"view":"flight"})");
  auto reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  const serve::Json* flight = reply->Find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_GE(flight->GetNumber("recorded", 0), 1);
  const serve::Json* recent = flight->Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_TRUE(recent->is_array());
  ASSERT_FALSE(recent->items().empty());
  EXPECT_EQ(recent->items().back().GetString("trace", ""), "fl-1");

  client.Send(R"({"op":"ops","id":6,"view":"prometheus"})");
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  const serve::Json* text = reply->Find("prometheus");
  ASSERT_NE(text, nullptr);
  ASSERT_TRUE(text->is_string());
  EXPECT_NE(text->as_string().find("# TYPE kdsel_net_requests counter"),
            std::string::npos);
  EXPECT_NE(text->as_string().find("kdsel_net_e2e_count"), std::string::npos);

  // An unknown view is a structured error, not a dropped connection.
  client.Send(R"({"op":"ops","id":7,"view":"bogus"})");
  reply = serve::Json::Parse(client.ReadLine());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->GetBool("ok", true));
  EXPECT_EQ(reply->GetNumber("id", -1), 7);
}

}  // namespace
}  // namespace kdsel::net
